// Mobility cache-maintenance bench: times what one node move costs the
// phy gain cache under the two invalidation policies —
//   incremental (MediumConfig::incremental_invalidation, the default):
//       recompute only the mover's row and column and splice it in or out
//       of the other sources' reachability sets, O(n) per move;
//   full rebuild (the retained reference oracle): recompute every ordered
//       pair and every reachability set, O(n^2) per move —
// over an identical seeded move sequence on a shadowed floor, then verifies
// the two media landed in bit-identical states (every cached gain, every
// reachability set). Reports the speedup; the golden test
// (test_dynamics_golden.cpp) separately pins that whole mobile sweeps stay
// byte-identical across the two policies.
//
// Doubles as a CI regression probe: the timing row rides in CMAP_BENCH_JSON
// and tools/check_bench_regression.py enforces mobility_speedup as a
// machine-independent minimum (both policies timed in this process) and
// mobility_states_match == 1.0.
//
// Knobs: CMAP_BENCH_NODES (default 150) radios on the floor;
// CMAP_BENCH_MOVES (default 1000) timed moves per policy.
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_main.h"
#include "phy/medium.h"
#include "phy/propagation.h"
#include "phy/radio.h"
#include "sim/random.h"
#include "sim/simulator.h"

using namespace cmap;
using namespace cmap::bench;

namespace {

struct Move {
  std::size_t who;
  phy::Position to;
};

// A floor of radios over shadowed propagation (the realistic per-link
// cost), no MACs or traffic — this bench isolates cache maintenance.
struct Floor {
  Floor(int nodes, double width, double height, std::uint64_t seed,
        bool incremental) {
    phy::LogDistanceConfig prop_cfg;
    prop_cfg.seed = seed;
    propagation = std::make_shared<phy::LogDistanceShadowing>(prop_cfg);
    phy::MediumConfig mcfg;
    mcfg.incremental_invalidation = incremental;
    medium = std::make_unique<phy::Medium>(sim, propagation, mcfg,
                                           sim::Rng(seed));
    auto error = std::make_shared<phy::NistErrorModel>();
    sim::Rng place(seed);
    for (int i = 0; i < nodes; ++i) {
      radios.push_back(std::make_unique<phy::Radio>(
          sim, *medium, static_cast<phy::NodeId>(i),
          phy::Position{place.uniform(0.0, width),
                        place.uniform(0.0, height)},
          phy::RadioConfig{}, error, sim::Rng(seed + 1 + i)));
    }
  }

  sim::Simulator sim;
  std::shared_ptr<const phy::PropagationModel> propagation;
  std::unique_ptr<phy::Medium> medium;
  std::vector<std::unique_ptr<phy::Radio>> radios;
};

double apply_moves(Floor& floor, const std::vector<Move>& moves) {
  const double t0 = cpu_ms_now();
  for (const Move& m : moves) {
    floor.radios[m.who]->set_position(m.to);
  }
  return cpu_ms_now() - t0;
}

// Order-sensitive digest of the whole cache: every mean gain and every
// reachability-set size. Gains determine the sets, but hashing both makes
// the check self-contained.
std::uint64_t state_hash(const Floor& floor) {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  const int n = static_cast<int>(floor.radios.size());
  for (int a = 0; a < n; ++a) {
    h = sim::mix64(
        h ^ floor.medium->fanout_candidates(static_cast<phy::NodeId>(a)));
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      const double g = floor.medium->mean_rx_power_dbm(
          static_cast<phy::NodeId>(a), static_cast<phy::NodeId>(b));
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(g));
      std::memcpy(&bits, &g, sizeof(bits));
      h = sim::mix64(h ^ bits);
    }
  }
  return h;
}

}  // namespace

int main() {
  const Scale s = load_scale();
  const int nodes = static_cast<int>(env_long("CMAP_BENCH_NODES", 150));
  const long n_moves = env_long("CMAP_BENCH_MOVES", 1000);
  // Same floor density as the paper's 50-node / 70x40 m office.
  const double scale = std::sqrt(nodes / 50.0);
  const double width = 70.0 * scale, height = 40.0 * scale;
  print_header("Mobility: incremental gain-cache invalidation vs full rebuild",
               "no paper claim — per-move cache maintenance under the "
               "dynamics subsystem",
               s);
  std::printf("nodes: %d (CMAP_BENCH_NODES), moves: %ld (CMAP_BENCH_MOVES)\n",
              nodes, n_moves);

  // One seeded move sequence shared verbatim by both policies: a random
  // node hops to a random point (the worst case for reachability splicing —
  // every move can cross the cull floor against many sources).
  sim::Rng rng(s.seed);
  std::vector<Move> moves;
  moves.reserve(static_cast<std::size_t>(n_moves));
  for (long m = 0; m < n_moves; ++m) {
    Move mv;
    mv.who = static_cast<std::size_t>(rng.uniform_int(0, nodes - 1));
    mv.to = {rng.uniform(0.0, width), rng.uniform(0.0, height)};
    moves.push_back(mv);
  }

  // Reference first, as elsewhere: it must not benefit from anything the
  // fast pass warmed up.
  Floor ref_floor(nodes, width, height, s.seed, /*incremental=*/false);
  const double ref_ms = apply_moves(ref_floor, moves);
  const std::uint64_t ref_hash = state_hash(ref_floor);

  Floor fast_floor(nodes, width, height, s.seed, /*incremental=*/true);
  const double fast_ms = apply_moves(fast_floor, moves);
  const std::uint64_t fast_hash = state_hash(fast_floor);

  // Floor the denominator at one clock quantum so a sub-resolution fast
  // pass reads as very fast, not as a division by zero.
  const double speedup = ref_ms / std::max(fast_ms, 1000.0 / CLOCKS_PER_SEC);
  const bool match = ref_hash == fast_hash;

  std::printf("full rebuild (ref):    %8.1f CPU-ms\n", ref_ms);
  std::printf("incremental:           %8.1f CPU-ms\n", fast_ms);
  std::printf("speedup:               %8.1fx\n", speedup);
  std::printf("states identical:      %s\n",
              match ? "yes (gains + reachability)" : "NO — BUG");

  stats::SweepReport report;
  stats::RunRow timing;
  timing.scenario = "mobility_bench";
  timing.scheme = "timing";
  timing.topology = "cpu-time";
  // Knob values ride along so the regression gate can reject a comparison
  // whose workload drifted from the baseline's; mobility_speedup is gated
  // as a raw minimum, mobility_states_match as a fixed 1.0, and the
  // reference runtime is informational (it only exists as the speedup's
  // denominator).
  timing.metrics = {{"nodes", static_cast<double>(nodes)},
                    {"moves", static_cast<double>(n_moves)},
                    {"move_reference_cpu_ms", ref_ms},
                    {"move_fast_cpu_ms", fast_ms},
                    {"mobility_speedup", speedup},
                    {"mobility_states_match", match ? 1.0 : 0.0},
                    {"calibration_ms", calibration_ms()}};
  report.add_row(std::move(timing));

  maybe_write_json(report);
  return match ? 0 : 1;
}
