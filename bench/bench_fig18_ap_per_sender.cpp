// Figure 18 (§5.6): CDF of per-sender throughput across all AP-topology
// runs (N = 3..6). Paper: CMAP raises the median per-sender throughput
// from ~2.5 to ~4.6 Mbit/s — a factor of ~1.8 over 802.11.
#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  const int runs_per_n =
      static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.full ? 10 : 5));
  print_header("Figure 18: AP topologies, per-sender throughput CDF",
               "CMAP median ~1.8x 802.11 (2.5 -> 4.6 Mbit/s)", s);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);

  const testbed::Scheme schemes[] = {testbed::Scheme::kCsma,
                                     testbed::Scheme::kCsmaOffAcks,
                                     testbed::Scheme::kCmap};
  stats::Distribution per_sender[3];
  for (int n_aps = 3; n_aps <= 6; ++n_aps) {
    sim::Rng rng(s.seed * 1000 + n_aps);
    for (int run = 0; run < runs_per_n; ++run) {
      const auto sc = picker.ap_scenario(n_aps, rng);
      if (!sc) continue;
      std::vector<testbed::Flow> flows;
      for (const auto& cell : sc->cells) {
        flows.push_back({cell.sender(), cell.receiver()});
      }
      for (int i = 0; i < 3; ++i) {
        testbed::RunConfig rc = make_run_config(s, schemes[i]);
        rc.seed += static_cast<std::uint64_t>(run) * 101;
        const auto result = testbed::run_flows(tb, flows, rc);
        for (const auto& f : result.flows) per_sender[i].add(f.mbps);
      }
    }
  }
  for (int i = 0; i < 3; ++i) {
    print_cdf(scheme_name(schemes[i]), per_sender[i]);
  }
  if (!per_sender[0].empty()) {
    std::printf("\nCMAP median / CS median: %.2fx (paper ~1.8x)\n",
                per_sender[2].median() / per_sender[0].median());
  }
  return 0;
}
