// Figure 18 (§5.6): CDF of per-sender throughput across all AP-topology
// runs (N = 3..6). Paper: CMAP raises the median per-sender throughput
// from ~2.5 to ~4.6 Mbit/s — a factor of ~1.8 over 802.11.
#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  const int runs_per_n =
      static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.full ? 10 : 5));
  print_header("Figure 18: AP topologies, per-sender throughput CDF",
               "CMAP median ~1.8x 802.11 (2.5 -> 4.6 Mbit/s)", s);

  testbed::Testbed tb({.seed = s.seed});
  const auto runner = make_runner(s);

  const char* names[] = {"CS,acks", "CSoff,acks", "CMAP"};
  stats::Distribution per_sender[3];
  for (int n_aps = 3; n_aps <= 6; ++n_aps) {
    auto sweep = make_sweep(s, "ap_wlan_" + std::to_string(n_aps),
                            {testbed::Scheme::kCsma,
                             testbed::Scheme::kCsmaOffAcks,
                             testbed::Scheme::kCmap});
    sweep.topologies = runs_per_n;
    const auto report = runner.run(sweep, tb);
    for (int i = 0; i < 3; ++i) {
      const stats::Distribution d = report.per_flow_mbps(names[i]);
      for (double v : d.values()) per_sender[i].add(v);
    }
  }
  for (int i = 0; i < 3; ++i) {
    print_cdf(names[i], per_sender[i]);
  }
  if (!per_sender[0].empty()) {
    std::printf("\nCMAP median / CS median: %.2fx (paper ~1.8x)\n",
                per_sender[2].median() / per_sender[0].median());
  }
  return 0;
}
