// Figure 20 (§5.8): the exposed-terminal experiment repeated at the 6, 12
// and 18 Mbit/s 802.11a rates, with control frames pinned at the base
// rate. Paper: CMAP keeps its advantage at higher bit-rates, though the
// number of exploitable exposed-terminal opportunities shrinks as the
// required SINR grows.
#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Figure 20: exposed terminals at 6/12/18 Mbit/s",
               "CMAP > CS at every rate; fewer opportunities at higher "
               "rates",
               s);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(s.seed ^ 0x20);
  const auto pairs = picker.exposed_pairs(s.configs, rng);
  std::printf("exposed-terminal configurations: %zu\n", pairs.size());

  const phy::WifiRate rates[] = {phy::WifiRate::k6Mbps, phy::WifiRate::k12Mbps,
                                 phy::WifiRate::k18Mbps};
  for (phy::WifiRate rate : rates) {
    stats::Distribution cs, cm;
    for (const auto& p : pairs) {
      const std::vector<testbed::Flow> flows = {{p.s1, p.r1}, {p.s2, p.r2}};
      testbed::RunConfig rc = make_run_config(s, testbed::Scheme::kCsma);
      rc.data_rate = rate;
      cs.add(testbed::run_flows(tb, flows, rc).aggregate_mbps);
      rc = make_run_config(s, testbed::Scheme::kCmap);
      rc.data_rate = rate;
      cm.add(testbed::run_flows(tb, flows, rc).aggregate_mbps);
    }
    std::printf("\n-- data rate %s --\n", phy::rate_name(rate));
    print_cdf("CS,acks", cs);
    print_cdf("CMAP", cm);
    if (!cs.empty()) {
      std::printf("median gain: %.2fx\n", cm.median() / cs.median());
    }
  }
  return 0;
}
