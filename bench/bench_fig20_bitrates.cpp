// Figure 20 (§5.8): the exposed-terminal experiment repeated at the 6, 12
// and 18 Mbit/s 802.11a rates, with control frames pinned at the base
// rate. Paper: CMAP keeps its advantage at higher bit-rates, though the
// number of exploitable exposed-terminal opportunities shrinks as the
// required SINR grows.
#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Figure 20: exposed terminals at 6/12/18 Mbit/s",
               "CMAP > CS at every rate; fewer opportunities at higher "
               "rates",
               s);

  testbed::Testbed tb({.seed = s.seed});
  auto sweep = make_sweep(s, "fig12_exposed",
                          {testbed::Scheme::kCsma, testbed::Scheme::kCmap});
  for (phy::WifiRate rate : {phy::WifiRate::k6Mbps, phy::WifiRate::k12Mbps,
                             phy::WifiRate::k18Mbps}) {
    sweep.variants.push_back(
        {phy::rate_name(rate),
         [rate](testbed::RunConfig& rc) { rc.data_rate = rate; }});
  }
  const auto report = make_runner(s).run(sweep, tb);
  std::printf("exposed-terminal configurations: %zu\n",
              report.rows().size() /
                  (sweep.schemes.size() * sweep.variants.size()));
  maybe_write_json(report);

  for (const auto& variant : sweep.variants) {
    const auto cs = report.aggregate("CS,acks", variant.label);
    const auto cm = report.aggregate("CMAP", variant.label);
    std::printf("\n-- data rate %s --\n", variant.label.c_str());
    print_cdf("CS,acks", cs);
    print_cdf("CMAP", cm);
    if (!cs.empty()) {
      std::printf("median gain: %.2fx\n", cm.median() / cs.median());
    }
  }
  return 0;
}
