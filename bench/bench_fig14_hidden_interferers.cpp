// Figure 14 (§5.4): how bad are hidden interferers? For random (S, R, I)
// triples, the scatter of normalized S->R throughput under I's continuous
// interference vs min(PRR(I->R), PRR(I->S)). The paper finds only ~8% of
// triples in the bottom-left quadrant (strong damage from an unhearable
// interferer) and an expected CMAP throughput of ~0.896 via
// E[p * 1 + (1-p) * T] with p = max(PRR(I->R) + PRR(I->S) - 1, 0).
#include <algorithm>

#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  Scale s = load_scale();
  // This experiment uses many short runs; scale the count up and the
  // duration down relative to the CDF benches.
  const int triples_count =
      static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.full ? 500 : 120));
  const sim::Time dur = s.full ? sim::seconds(20) : s.duration / 2;
  const sim::Time warm = dur / 4;
  print_header("Figure 14: hidden interferers",
               "~8% of triples in bottom-left quadrant; expected CMAP "
               "throughput ~0.896",
               s);
  std::printf("triples: %d, per-run %.0f s\n", triples_count,
              sim::to_seconds(dur));

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(s.seed ^ 0x14);
  const auto triples = picker.interferer_triples(triples_count, rng);

  testbed::RunConfig rc = make_run_config(s, testbed::Scheme::kCsmaOffNoAcks);
  rc.duration = dur;
  rc.warmup = warm;

  int bottom_left = 0;
  double expected_cmap_sum = 0.0;
  int n = 0;
  std::printf("   minPRR  normT   (first 20 rows shown)\n");
  for (const auto& t : triples) {
    // Throughput of S->R alone, then with I blasting continuously.
    const double alone =
        testbed::run_flows(tb, {{t.s, t.r}}, rc).flows[0].mbps;
    if (alone <= 0.01) continue;
    testbed::World world(tb, rc);
    world.add_saturated_flow(t.s, t.r);
    world.add_saturated_flow(t.i, phy::kBroadcastId);
    world.run(rc.duration);
    const double with_i = world.sink(t.r).meter().mbps();
    const double norm = std::min(1.0, with_i / alone);
    const double pr = tb.prr(t.i, t.r);
    const double ps = tb.prr(t.i, t.s);
    const double min_prr = std::min(pr, ps);
    if (norm < 0.5 && min_prr < 0.5) ++bottom_left;
    const double p = std::max(pr + ps - 1.0, 0.0);
    expected_cmap_sum += p * 1.0 + (1.0 - p) * norm;
    ++n;
    if (n <= 20) std::printf("   %6.3f %6.3f\n", min_prr, norm);
  }
  if (n > 0) {
    std::printf("\nbottom-left quadrant (norm<0.5 & minPRR<0.5): %.1f%% "
                "(paper ~8%%)\n",
                100.0 * bottom_left / n);
    std::printf("expected CMAP normalized throughput: %.3f (paper ~0.896)\n",
                expected_cmap_sum / n);
  }
  return 0;
}
