// Figure 14 (§5.4): how bad are hidden interferers? For random (S, R, I)
// triples, the scatter of normalized S->R throughput under I's continuous
// interference vs min(PRR(I->R), PRR(I->S)). The paper finds only ~8% of
// triples in the bottom-left quadrant (strong damage from an unhearable
// interferer) and an expected CMAP throughput of ~0.896 via
// E[p * 1 + (1-p) * T] with p = max(PRR(I->R) + PRR(I->S) - 1, 0).
#include <algorithm>

#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  // This experiment uses many short runs; scale the count up and the
  // duration down relative to the CDF benches.
  const int triples_count =
      static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.full ? 500 : 120));
  const sim::Time dur = s.full ? sim::seconds(20) : s.duration / 2;
  print_header("Figure 14: hidden interferers",
               "~8% of triples in bottom-left quadrant; expected CMAP "
               "throughput ~0.896",
               s);
  std::printf("triples: %d, per-run %.0f s\n", triples_count,
              sim::to_seconds(dur));

  testbed::Testbed tb({.seed = s.seed});
  scenario::Sweep sweep;
  sweep.scenario = "interferer_triple";
  sweep.schemes = {testbed::Scheme::kCsmaOffNoAcks};
  sweep.topologies = triples_count;
  sweep.base_seed = s.seed;
  sweep.duration = dur;
  sweep.warmup = dur / 4;
  const auto report = make_runner(s).run(sweep, tb);
  maybe_write_json(report);

  int bottom_left = 0;
  double expected_cmap_sum = 0.0;
  int n = 0;
  std::printf("   minPRR  normT   (first 20 rows shown)\n");
  for (const auto& row : report.rows()) {
    const double norm = row.metric("norm_throughput");
    const double min_prr = row.metric("min_prr");
    if (norm < 0.5 && min_prr < 0.5) ++bottom_left;
    const double p = std::max(
        row.metric("prr_to_receiver") + row.metric("prr_to_sender") - 1.0,
        0.0);
    expected_cmap_sum += p * 1.0 + (1.0 - p) * norm;
    ++n;
    if (n <= 20) std::printf("   %6.3f %6.3f\n", min_prr, norm);
  }
  if (n > 0) {
    std::printf("\nbottom-left quadrant (norm<0.5 & minPRR<0.5): %.1f%% "
                "(paper ~8%%)\n",
                100.0 * bottom_left / n);
    std::printf("expected CMAP normalized throughput: %.3f (paper ~0.896)\n",
                expected_cmap_sum / n);
  }
  return 0;
}
