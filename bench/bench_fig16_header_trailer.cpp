// Figure 16 (§5.5): validates transmitting BOTH a header and a trailer.
// For the in-range (§5.3) and hidden-terminal (§5.5) two-sender
// experiments, the CDF across receivers of the per-VP probability that
// (a) the header alone, or (b) either header or trailer, was received.
// Paper: P(header or trailer) > P(header), with the gap largest when the
// senders are hidden from each other and collide persistently; near 1
// when senders are in range.
#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

namespace {

void vp_reception(const stats::SweepReport& report, stats::Distribution* hdr,
                  stats::Distribution* delim) {
  for (const auto& row : report.rows()) {
    for (const auto& f : row.flows) {
      if (f.vps_sent == 0) continue;
      hdr->add(static_cast<double>(f.rx_vps_header) /
               static_cast<double>(f.vps_sent));
      delim->add(static_cast<double>(f.rx_vps_delim) /
                 static_cast<double>(f.vps_sent));
    }
  }
}

}  // namespace

int main() {
  const Scale s = load_scale();
  print_header("Figure 16: header vs header-or-trailer reception",
               "P(header or trailer) > P(header); both ~1 when senders "
               "in range",
               s);

  testbed::Testbed tb({.seed = s.seed});
  const auto runner = make_runner(s);
  const auto in_report =
      runner.run(make_sweep(s, "fig13_inrange", {testbed::Scheme::kCmap}), tb);
  const auto out_report =
      runner.run(make_sweep(s, "fig15_hidden", {testbed::Scheme::kCmap}), tb);

  stats::Distribution in_hdr, in_delim, out_hdr, out_delim;
  vp_reception(in_report, &in_hdr, &in_delim);
  vp_reception(out_report, &out_hdr, &out_delim);

  print_cdf("in-range hdr", in_hdr);
  print_cdf("in-range h|t", in_delim);
  print_cdf("hidden   hdr", out_hdr);
  print_cdf("hidden   h|t", out_delim);
  if (!in_hdr.empty() && !out_hdr.empty()) {
    std::printf("\ntrailer benefit (median h|t - hdr): in-range %+.3f, "
                "hidden %+.3f (paper: benefit larger when hidden)\n",
                in_delim.median() - in_hdr.median(),
                out_delim.median() - out_hdr.median());
  }
  return 0;
}
