// Dense-grid stress bench: hundreds of nodes, a quarter of them saturating
// flows concurrently — the workload the PHY fast path (link-gain cache,
// reachability culling, swept-interval interference) exists for. Doubles
// as the CI benchmark-regression probe: runtime measurements are appended
// to the report as metric rows, so the CMAP_BENCH_JSON artifact carries
// both throughput results and runtime for tools/check_bench_regression.py.
//
// The gated measurements use process CPU time normalized by the shared
// calibration workload — see cpu_ms_now()/calibration_ms() in bench_main.h.
//
// Extra knob: CMAP_BENCH_NODES (default 200) sizes the testbed.
#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  Scale s = load_scale();
  if (std::getenv("CMAP_BENCH_SECONDS") == nullptr && !s.full) {
    s.duration = sim::seconds(5);  // dense runs are expensive per sim-second
    s.warmup = sim::seconds(2);
  }
  if (std::getenv("CMAP_BENCH_CONFIGS") == nullptr && !s.full) {
    s.configs = 4;
  }
  const int nodes = static_cast<int>(env_long("CMAP_BENCH_NODES", 200));
  print_header("Dense grid: PHY fast-path stress",
               "no paper claim — scaling workload + CI regression probe", s);
  std::printf("nodes: %d (CMAP_BENCH_NODES)\n", nodes);

  double t0 = cpu_ms_now();
  testbed::TestbedConfig cfg;
  cfg.num_nodes = nodes;
  cfg.seed = s.seed;
  testbed::Testbed tb(cfg);
  const double build_ms = cpu_ms_now() - t0;
  std::printf("testbed measurement pass: %.0f CPU-ms, mean degree %.1f\n",
              build_ms, tb.mean_degree());

  auto sweep = make_sweep(s, "dense_grid_25",
                          {testbed::Scheme::kCsma, testbed::Scheme::kCmap});
  t0 = cpu_ms_now();
  auto report = make_runner(s).run(sweep, tb);
  const double sweep_ms = cpu_ms_now() - t0;
  std::printf("sweep: %zu runs in %.0f CPU-ms\n", report.rows().size(),
              sweep_ms);

  report.print_table();

  // Timing rows for the regression gate; the "timing" scheme name keeps
  // them out of the throughput groups above.
  const double calib = calibration_ms();
  stats::RunRow timing;
  timing.scenario = "dense_grid_bench";
  timing.scheme = "timing";
  timing.topology = "cpu-time";
  // The knob values ride along so the regression gate can reject a
  // comparison whose workload silently drifted from the baseline's.
  timing.metrics = {{"nodes", static_cast<double>(nodes)},
                    {"configs", static_cast<double>(s.configs)},
                    {"run_seconds", sim::to_seconds(s.duration)},
                    {"threads", static_cast<double>(make_runner(s).threads())},
                    {"testbed_build_cpu_ms", build_ms},
                    {"sweep_cpu_ms", sweep_ms},
                    {"calibration_ms", calib}};
  report.add_row(std::move(timing));
  std::printf("calibration: %.0f CPU-ms (normalizes the regression gate)\n",
              calib);

  maybe_write_json(report);
  return 0;
}
