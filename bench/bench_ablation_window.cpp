// Ablation (motivated by §5.2's win=1 result): sweep the send window size
// over exposed-terminal pairs. The windowed ACK protocol is load-bearing —
// exposed concurrency inevitably collides ACKs at the senders, and only a
// multi-VP window rides that out without spurious retransmissions.
#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Ablation: send window size on exposed terminals",
               "paper: win=8 -> ~2x, win=1 -> ~1.5x over CS", s);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(s.seed ^ 0xab1);
  const auto pairs = picker.exposed_pairs(std::min(s.configs, 12), rng);
  std::printf("configurations: %zu\n", pairs.size());

  stats::Distribution base;
  for (const auto& p : pairs) {
    base.add(pair_aggregate_mbps(tb, p, s, testbed::Scheme::kCsma));
  }
  print_cdf("CS,acks", base);

  for (int win : {1, 2, 4, 8, 16}) {
    stats::Distribution d;
    for (const auto& p : pairs) {
      const std::vector<testbed::Flow> flows = {{p.s1, p.r1}, {p.s2, p.r2}};
      testbed::RunConfig rc = make_run_config(s, testbed::Scheme::kCmap);
      rc.cmap_nwindow = win;
      d.add(testbed::run_flows(tb, flows, rc).aggregate_mbps);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "CMAP win=%d", win);
    print_cdf(label, d);
    if (!base.empty() && !d.empty()) {
      std::printf("  -> median gain over CS: %.2fx\n",
                  d.median() / base.median());
    }
  }
  return 0;
}
