// Ablation (motivated by §5.2's win=1 result): sweep the send window size
// over exposed-terminal pairs. The windowed ACK protocol is load-bearing —
// exposed concurrency inevitably collides ACKs at the senders, and only a
// multi-VP window rides that out without spurious retransmissions.
#include <algorithm>

#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Ablation: send window size on exposed terminals",
               "win=8 -> ~2x, win=1 -> ~1.5x over CS", s);

  testbed::Testbed tb({.seed = s.seed});

  auto base_sweep =
      make_sweep(s, "fig12_exposed", {testbed::Scheme::kCsma});
  base_sweep.topologies = std::min(s.configs, 12);
  const auto runner = make_runner(s);
  const auto base_report = runner.run(base_sweep, tb);
  std::printf("configurations: %zu\n", base_report.rows().size());
  const auto base = base_report.aggregate("CS,acks");
  print_cdf("CS,acks", base);

  auto sweep = make_sweep(s, "fig12_exposed", {testbed::Scheme::kCmap});
  sweep.topologies = std::min(s.configs, 12);
  for (int win : {1, 2, 4, 8, 16}) {
    sweep.variants.push_back(
        {"win=" + std::to_string(win),
         [win](testbed::RunConfig& rc) { rc.with_nwindow(win); }});
  }
  const auto report = runner.run(sweep, tb);
  maybe_write_json(report);

  for (const auto& variant : sweep.variants) {
    const auto d = report.aggregate("CMAP", variant.label);
    const std::string label = "CMAP " + variant.label;
    print_cdf(label.c_str(), d);
    if (!base.empty() && !d.empty()) {
      std::printf("  -> median gain over CS: %.2fx\n",
                  d.median() / base.median());
    }
  }
  return 0;
}
