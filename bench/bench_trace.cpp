// Trace-overhead bench: the cost of the always-on trace subsystem on the
// dense-grid CMAP workload, in three modes —
//   untraced:  no Tracer attached (RunConfig::trace unset, the default);
//   disabled:  a Tracer attached with an empty category mask — every
//       instrumentation site reduces to one branch on a cached mask, the
//       configuration the "always-on" claim rests on;
//   enabled:   PHY + MAC categories recorded to per-run .cmtrace files.
// The three modes run interleaved for several reps on an identical seeded
// sweep; min-of-reps CPU time per mode discards scheduler deschedules.
//
// Doubles as a CI regression probe: the timing row rides in CMAP_BENCH_JSON
// and tools/check_bench_regression.py enforces trace_overhead_off (the
// disabled/untraced CPU-time ratio, measured within this one process, so
// machine-independent) as a fixed maximum of 1.02 — instrumenting a hot
// path with anything costlier than the mask branch is the regression this
// bench exists to catch. The enabled-mode overhead and trace size are
// reported as diagnostics, not gated: recording cost scales with what the
// user chose to record.
//
// Extra knob: CMAP_BENCH_NODES (default 120) sizes the testbed.
#include <algorithm>
#include <filesystem>
#include <string>

#include "bench_main.h"
#include "trace/trace.h"

using namespace cmap;
using namespace cmap::bench;

namespace {

enum class Mode { kUntraced, kDisabled, kEnabled };

double run_once(const Scale& s, const testbed::Testbed& tb, Mode mode,
                const std::string& trace_dir) {
  auto sweep = make_sweep(s, "dense_grid_25", {testbed::Scheme::kCmap});
  if (mode != Mode::kUntraced) {
    trace::TraceConfig tc;
    tc.path = trace_dir;
    tc.categories = mode == Mode::kDisabled
                        ? 0u
                        : (trace::kPhyCategories | trace::kMacCategories);
    sweep.trace = tc;
  }
  const double t0 = cpu_ms_now();
  auto report = make_runner(s).run(sweep, tb);
  const double elapsed = cpu_ms_now() - t0;
  // Consume the report so the sweep cannot be elided.
  volatile double guard = report.rows().empty()
                              ? 0.0
                              : report.rows().front().aggregate_mbps;
  (void)guard;
  return elapsed;
}

}  // namespace

int main() {
  Scale s = load_scale();
  if (std::getenv("CMAP_BENCH_SECONDS") == nullptr && !s.full) {
    s.duration = sim::seconds(2);  // three modes x reps: keep each run short
    s.warmup = sim::seconds(1);
  }
  if (std::getenv("CMAP_BENCH_CONFIGS") == nullptr && !s.full) {
    s.configs = 2;
  }
  const int nodes = static_cast<int>(env_long("CMAP_BENCH_NODES", 120));
  constexpr int kReps = 3;
  print_header("Trace subsystem: recording overhead on the dense grid",
               "no paper claim — bounded-overhead guarantee of the trace "
               "subsystem",
               s);
  std::printf("nodes: %d (CMAP_BENCH_NODES), reps: %d (interleaved, min)\n",
              nodes, kReps);

  testbed::TestbedConfig cfg;
  cfg.num_nodes = nodes;
  cfg.seed = s.seed;
  const testbed::Testbed tb(cfg);

  const std::string trace_dir =
      (std::filesystem::temp_directory_path() / "cmap_trace_bench").string();
  std::filesystem::create_directories(trace_dir);

  // Interleave the modes so slow drift (thermal, a noisy neighbor arriving
  // mid-bench) hits all three alike instead of biasing whichever ran last.
  double untraced_ms = 1e300, disabled_ms = 1e300, enabled_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    untraced_ms =
        std::min(untraced_ms, run_once(s, tb, Mode::kUntraced, trace_dir));
    disabled_ms =
        std::min(disabled_ms, run_once(s, tb, Mode::kDisabled, trace_dir));
    enabled_ms =
        std::min(enabled_ms, run_once(s, tb, Mode::kEnabled, trace_dir));
  }

  // Bytes written by one enabled-mode sweep (the files the last rep left).
  std::uint64_t trace_bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(trace_dir)) {
    if (entry.path().extension() == ".cmtrace") {
      trace_bytes += entry.file_size();
    }
  }

  // Floor the denominator at one clock quantum so a sub-resolution run
  // reads as very fast, not as a division by zero.
  const double floor_ms = 1000.0 / CLOCKS_PER_SEC;
  const double overhead_off =
      disabled_ms / std::max(untraced_ms, floor_ms);
  const double overhead_on = enabled_ms / std::max(untraced_ms, floor_ms);

  std::printf("untraced:              %8.1f CPU-ms (min of %d)\n",
              untraced_ms, kReps);
  std::printf("tracer attached, off:  %8.1f CPU-ms  -> x%.3f\n", disabled_ms,
              overhead_off);
  std::printf("phy+mac recorded:      %8.1f CPU-ms  -> x%.3f, %llu bytes\n",
              enabled_ms, overhead_on,
              static_cast<unsigned long long>(trace_bytes));

  stats::SweepReport report;
  stats::RunRow timing;
  timing.scenario = "trace_bench";
  timing.scheme = "timing";
  timing.topology = "cpu-time";
  // Knob values ride along so the regression gate can reject a comparison
  // whose workload drifted from the baseline's; trace_overhead_off is
  // gated as a fixed maximum, everything else is informational (the raw
  // timings only exist as the ratio's terms, and enabled-mode cost scales
  // with the chosen category mask).
  timing.metrics = {{"nodes", static_cast<double>(nodes)},
                    {"configs", static_cast<double>(s.configs)},
                    {"run_seconds", sim::to_seconds(s.duration)},
                    {"threads", static_cast<double>(make_runner(s).threads())},
                    {"trace_untraced_cpu_ms", untraced_ms},
                    {"trace_disabled_cpu_ms", disabled_ms},
                    {"trace_enabled_cpu_ms", enabled_ms},
                    {"trace_overhead_off", overhead_off},
                    {"trace_overhead_on", overhead_on},
                    {"trace_bytes", static_cast<double>(trace_bytes)},
                    {"calibration_ms", calibration_ms()}};
  report.add_row(std::move(timing));

  maybe_write_json(report);
  std::filesystem::remove_all(trace_dir);
  return 0;
}
