// MAC decision bench: times the CMAP send decision ("may I send to v now?",
// §3.2) in both implementations — the fast path (indexed DeferTable probes
// over an allocation-free ongoing ring, via DeferDecider::decide) and the
// retained reference scan (snapshot + O(entries) table scan per ongoing
// transmission) — against the conflict-map state of a node watching many
// concurrent flows. Reports the speedup and verifies every decision
// (defer bit and recheck time) is identical across the two paths. Doubles
// as a CI regression probe: the timing row rides in the CMAP_BENCH_JSON
// report and tools/check_bench_regression.py enforces mac_decide_speedup
// as a machine-independent minimum (both paths timed in this process)
// plus the calibration-normalized wall-clock gates.
//
// Knobs: CMAP_BENCH_FLOWS (default 200) concurrent transmissions on the
// observer's ongoing list; CMAP_BENCH_DECISIONS (default 4000) timed
// decisions per path.
#include <cstdint>
#include <vector>

#include "bench_main.h"
#include "core/cmap_mac.h"
#include "core/defer_table.h"
#include "core/ongoing_list.h"
#include "sim/random.h"

using namespace cmap;
using namespace cmap::bench;

namespace {

// One decision sequence, shared verbatim by both timed loops. Destinations
// cycle over idle targets (the defer-table probes decide) with every 8th
// aimed at a busy receiver (the dst-busy check decides); `now` creeps
// forward inside the window where nothing expires, so both paths see the
// exact same live state on every query.
struct Query {
  phy::NodeId dst;
  sim::Time now;
};

struct Tally {
  std::uint64_t defers = 0;
  std::uint64_t until_hash = 0;  // folds every recheck time

  void absorb(const core::DeferDecision& d) {
    if (d.defer) {
      ++defers;
      until_hash =
          sim::mix64(until_hash ^ static_cast<std::uint64_t>(d.until));
    }
  }
  bool operator==(const Tally& o) const {
    return defers == o.defers && until_hash == o.until_hash;
  }
};

}  // namespace

int main() {
  const Scale s = load_scale();
  const int flows = static_cast<int>(env_long("CMAP_BENCH_FLOWS", 200));
  const long decisions =
      env_long("CMAP_BENCH_DECISIONS", 4000);
  print_header("MAC send decision: fast (indexed) vs reference scan",
               "no paper claim — per-transmit-attempt hot path at high "
               "concurrency",
               s);
  std::printf("flows: %d (CMAP_BENCH_FLOWS), decisions: %ld "
              "(CMAP_BENCH_DECISIONS)\n",
              flows, decisions);

  // Node layout: senders 0..F-1, receivers F..2F-1, observer 2F, idle
  // query targets 2F+1..2F+kTargets.
  const auto F = static_cast<phy::NodeId>(flows);
  const phy::NodeId self = 2 * F;
  constexpr phy::NodeId kTargets = 64;

  core::OngoingList ongoing;
  core::DeferTable table(sim::seconds(1000));
  sim::Rng rng(s.seed);

  // Every flow on the air until well past the query window.
  for (phy::NodeId i = 0; i < F; ++i) {
    core::VpDescriptor d;
    d.src = i;
    d.dst = F + i;
    d.data_rate = phy::WifiRate::k6Mbps;
    ongoing.note(d, sim::seconds(50) + sim::milliseconds(i));
  }

  // The observer's slice of the conflict map, populated through the real
  // update rules. The first half of the targets are "conflicted": their
  // lists report (self, sender) conflicts against live senders (rule 1),
  // so sending to them defers. The second half are clean — decisions for
  // them come out "clear to send", which is the reference scan's worst
  // case (no early exit anywhere: every ongoing pair scans the whole
  // table). No rule-2 entry references a live flow on purpose: one such
  // entry would force EVERY decision to defer and flatten the mix.
  for (phy::NodeId t = 0; t < kTargets / 2; ++t) {
    for (phy::NodeId i = 0; i < F; ++i) {
      if (rng.bernoulli(0.04)) {
        table.apply_interferer_list(self, self + 1 + t, {{self, i}}, 0);
      }
    }
  }
  // Stale mass: conflicts against neighbours that are NOT transmitting —
  // the reference scan pays for every one of them on every ongoing pair,
  // the index never touches them. (Realistic: the table ages out over a
  // 20 s TTL while the set of active senders turns over much faster.)
  // Both rule shapes, so both pattern indexes carry dead weight too.
  for (std::uint32_t k = 0; k < 192; ++k) {
    table.apply_interferer_list(
        self, self + 1 + (k % kTargets), {{self, 1'000'000 + k}}, 0);
  }
  for (std::uint32_t k = 0; k < 192; ++k) {
    table.apply_interferer_list(self, F + (k % F), {{500'000 + k, self}}, 0);
  }
  const double table_entries = static_cast<double>(table.size());
  std::printf("ongoing: %zu transmissions, defer table: %.0f entries\n",
              ongoing.size(), table_entries);

  std::vector<Query> queries;
  queries.reserve(static_cast<std::size_t>(decisions));
  for (long q = 0; q < decisions; ++q) {
    Query qu;
    qu.dst = (q % 8 == 7)
                 ? F + static_cast<phy::NodeId>(q % flows)     // busy
                 : self + 1 + static_cast<phy::NodeId>(q) % kTargets;  // idle
    qu.now = sim::seconds(1) + q;  // creep forward, nothing expires
    queries.push_back(qu);
  }

  const core::DeferDecider decider(ongoing, table, self,
                                   /*annotate_rates=*/false);

  // Reference first: it must not benefit from the fast pass's lazy
  // reclamation (there is nothing expired to reclaim here, but the order
  // keeps the comparison honest by construction).
  Tally ref_tally;
  double t0 = cpu_ms_now();
  for (const Query& q : queries) {
    ref_tally.absorb(
        decider.decide_reference(q.dst, core::kAnyRate, q.now));
  }
  const double ref_ms = cpu_ms_now() - t0;

  Tally fast_tally;
  t0 = cpu_ms_now();
  for (const Query& q : queries) {
    fast_tally.absorb(decider.decide(q.dst, core::kAnyRate, q.now));
  }
  const double fast_ms = cpu_ms_now() - t0;

  // Floor the denominator at one clock quantum so a sub-resolution fast
  // pass reads as very fast, not as a division by zero.
  const double speedup = ref_ms / std::max(fast_ms, 1000.0 / CLOCKS_PER_SEC);
  const bool match = fast_tally == ref_tally;

  std::printf("reference scan:        %8.1f CPU-ms (%llu defers)\n", ref_ms,
              static_cast<unsigned long long>(ref_tally.defers));
  std::printf("fast (indexed):        %8.1f CPU-ms (%llu defers)\n", fast_ms,
              static_cast<unsigned long long>(fast_tally.defers));
  std::printf("speedup:               %8.1fx\n", speedup);
  std::printf("decisions identical:   %s\n",
              match ? "yes (defer bits + recheck times)" : "NO — BUG");

  stats::SweepReport report;
  stats::RunRow timing;
  timing.scenario = "mac_decide_bench";
  timing.scheme = "timing";
  timing.topology = "cpu-time";
  // Knob values ride along so the regression gate can reject a comparison
  // whose workload drifted from the baseline's; *_ms rows are normalized
  // by calibration_ms; mac_decide_speedup is gated as a raw minimum and
  // decisions_match as a fixed 1.0.
  timing.metrics = {{"flows", static_cast<double>(flows)},
                    {"decisions", static_cast<double>(decisions)},
                    {"table_entries", table_entries},
                    {"decide_reference_cpu_ms", ref_ms},
                    {"decide_fast_cpu_ms", fast_ms},
                    {"mac_decide_speedup", speedup},
                    {"decisions_match", match ? 1.0 : 0.0},
                    {"calibration_ms", calibration_ms()}};
  report.add_row(std::move(timing));

  maybe_write_json(report);
  return match ? 0 : 1;
}
