// Shared plumbing for the figure-reproduction benches: environment-driven
// scaling, common run helpers, and table/CDF printing.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "stats/summary.h"
#include "testbed/experiment.h"
#include "testbed/topology_picker.h"

namespace cmap::bench {

struct Scale {
  sim::Time duration = sim::seconds(20);
  sim::Time warmup = sim::seconds(8);
  int configs = 16;
  std::uint64_t seed = 1;
  bool full = false;
};

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

/// Reads CMAP_BENCH_* knobs; CMAP_BENCH_FULL=1 selects paper scale
/// (100-second runs measured over the last 60, 50 configurations).
inline Scale load_scale() {
  Scale s;
  s.full = env_long("CMAP_BENCH_FULL", 0) != 0;
  if (s.full) {
    s.duration = sim::seconds(100);
    s.warmup = sim::seconds(40);
    s.configs = 50;
  }
  const long secs = env_long("CMAP_BENCH_SECONDS", 0);
  if (secs > 0) {
    s.duration = sim::seconds(static_cast<double>(secs));
    s.warmup = s.duration * 2 / 5;
  }
  s.configs = static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.configs));
  s.seed = static_cast<std::uint64_t>(env_long("CMAP_BENCH_SEED", 1));
  return s;
}

inline testbed::RunConfig make_run_config(const Scale& s,
                                          testbed::Scheme scheme) {
  testbed::RunConfig rc;
  rc.scheme = scheme;
  rc.duration = s.duration;
  rc.warmup = s.warmup;
  rc.seed = s.seed * 7919 + static_cast<std::uint64_t>(scheme);
  return rc;
}

/// Aggregate goodput (Mbit/s) of both flows of a link pair under `scheme`.
inline double pair_aggregate_mbps(const testbed::Testbed& tb,
                                  const testbed::LinkPair& p,
                                  const Scale& s, testbed::Scheme scheme) {
  const std::vector<testbed::Flow> flows = {{p.s1, p.r1}, {p.s2, p.r2}};
  return testbed::run_flows(tb, flows, make_run_config(s, scheme))
      .aggregate_mbps;
}

inline void print_header(const char* figure, const char* paper_claim,
                         const Scale& s) {
  std::printf("== %s ==\n", figure);
  std::printf("paper: %s\n", paper_claim);
  std::printf(
      "scale: %.0f s runs (measure last %.0f s), %d configs, seed %llu%s\n",
      sim::to_seconds(s.duration), sim::to_seconds(s.duration - s.warmup),
      s.configs, static_cast<unsigned long long>(s.seed),
      s.full ? " [FULL]" : "");
}

inline void print_cdf(const char* name, const stats::Distribution& d) {
  if (d.empty()) {
    std::printf("%-16s (no samples)\n", name);
    return;
  }
  std::printf(
      "%-16s n=%-3zu p10=%6.2f p25=%6.2f median=%6.2f p75=%6.2f p90=%6.2f "
      "mean=%6.2f\n",
      name, d.count(), d.percentile(10), d.percentile(25), d.median(),
      d.percentile(75), d.percentile(90), d.mean());
}

}  // namespace cmap::bench
