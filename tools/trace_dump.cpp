// trace_dump: decode a .cmtrace binary event stream (docs/trace_format.md)
// to human-readable text or JSON lines, or replay the conflict-map
// evolution it records (--replay-defer-table / --replay-ongoing) to
// reconstruct any node's DeferTable or OngoingList at a chosen tick.
// Decode errors exit 1 with a message; truncated traces never dump
// silently-partial output without saying so.
//
// Usage:
//   trace_dump FILE [--json] [--category NAME]... [--limit N]
//   trace_dump FILE --replay-defer-table --tick T_NS [--node ID]
//   trace_dump FILE --replay-ongoing --tick T_NS [--node ID]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "trace/reader.h"
#include "trace/trace.h"

namespace {

using namespace cmap;

const char* defer_reason_name(trace::DeferReason r) {
  switch (r) {
    case trace::DeferReason::kNone: return "none";
    case trace::DeferReason::kDstBusy: return "dst_busy";
    case trace::DeferReason::kConflictMap: return "conflict_map";
  }
  return "?";
}

const char* table_op_name(trace::DeferTableOp op) {
  switch (op) {
    case trace::DeferTableOp::kInsert: return "insert";
    case trace::DeferTableOp::kRefresh: return "refresh";
    case trace::DeferTableOp::kExpire: return "expire";
  }
  return "?";
}

const char* ongoing_op_name(trace::OngoingOp op) {
  switch (op) {
    case trace::OngoingOp::kNote: return "note";
    case trace::OngoingOp::kUpdate: return "update";
    case trace::OngoingOp::kExpire: return "expire";
  }
  return "?";
}

const char* collision_reason_name(trace::CollisionReason r) {
  switch (r) {
    case trace::CollisionReason::kPreambleSinr: return "preamble_sinr";
    case trace::CollisionReason::kCaptured: return "captured";
    case trace::CollisionReason::kLocalTx: return "local_tx";
  }
  return "?";
}

// "*" for the broadcast wildcard id in defer-table patterns.
std::string id_or_star(std::uint32_t id) {
  if (id == 0xffffffffu) return "*";
  return std::to_string(id);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_text(const trace::Record& r) {
  std::printf("%14" PRId64 " %-13s", r.tick,
              trace::category_name(r.category));
  switch (r.category) {
    case trace::Category::kPhyTx: {
      const auto& b = std::get<trace::PhyTxRecord>(r.body);
      std::printf(" node=%u frame=%" PRIu64 " rate=%u bytes=%u dur=%" PRId64,
                  b.node, b.frame_id, b.rate, b.bytes, b.duration);
      break;
    }
    case trace::Category::kPhyRx: {
      const auto& b = std::get<trace::PhyRxRecord>(r.body);
      std::printf(" node=%u frame=%" PRIu64 " from=%u ok=%d min_sinr=%.2fdB",
                  b.node, b.frame_id, b.tx_node, b.ok ? 1 : 0,
                  b.min_sinr_cdb / 100.0);
      break;
    }
    case trace::Category::kPhyCollision: {
      const auto& b = std::get<trace::PhyCollisionRecord>(r.body);
      std::printf(" node=%u frame=%" PRIu64 " reason=%s", b.node, b.frame_id,
                  collision_reason_name(b.reason));
      break;
    }
    case trace::Category::kMacDefer: {
      const auto& b = std::get<trace::MacDeferRecord>(r.body);
      std::printf(" node=%u dst=%u decision=%s", b.node, b.dst,
                  b.deferred ? "defer" : "send");
      if (b.deferred) {
        std::printf(" reason=%s blocker=%u->%u until=%" PRId64,
                    defer_reason_name(b.reason), b.blocker_src, b.blocker_dst,
                    b.until);
      }
      break;
    }
    case trace::Category::kDeferTable: {
      const auto& b = std::get<trace::DeferTableRecord>(r.body);
      std::printf(" node=%u op=%s pattern=(%s: %s->%s) rates=%u/%u"
                  " expires=%" PRId64,
                  b.node, table_op_name(b.op), id_or_star(b.dst).c_str(),
                  id_or_star(b.src).c_str(), id_or_star(b.via).c_str(),
                  b.my_rate, b.their_rate, b.expires);
      break;
    }
    case trace::Category::kOngoing: {
      const auto& b = std::get<trace::OngoingRecord>(r.body);
      std::printf(" node=%u op=%s tx=%u->%u end=%" PRId64, b.node,
                  ongoing_op_name(b.op), b.src, b.dst, b.end_time);
      break;
    }
    case trace::Category::kMove: {
      const auto& b = std::get<trace::MoveRecord>(r.body);
      std::printf(" node=%u x=%.3fm y=%.3fm", b.node, b.x_mm / 1000.0,
                  b.y_mm / 1000.0);
      break;
    }
    case trace::Category::kChannelEpoch: {
      const auto& b = std::get<trace::ChannelEpochRecord>(r.body);
      std::printf(" epoch=%" PRIu64, b.epoch);
      break;
    }
    case trace::Category::kLog: {
      const auto& b = std::get<trace::LogRecord>(r.body);
      std::printf(" level=%u [%s] %s", b.level, b.component.c_str(),
                  b.message.c_str());
      break;
    }
    case trace::Category::kCount:
      break;
  }
  std::printf("\n");
}

void print_json(const trace::Record& r) {
  std::printf("{\"tick\":%" PRId64 ",\"category\":\"%s\"", r.tick,
              trace::category_name(r.category));
  switch (r.category) {
    case trace::Category::kPhyTx: {
      const auto& b = std::get<trace::PhyTxRecord>(r.body);
      std::printf(",\"node\":%u,\"frame\":%" PRIu64
                  ",\"rate\":%u,\"bytes\":%u,\"duration\":%" PRId64,
                  b.node, b.frame_id, b.rate, b.bytes, b.duration);
      break;
    }
    case trace::Category::kPhyRx: {
      const auto& b = std::get<trace::PhyRxRecord>(r.body);
      std::printf(",\"node\":%u,\"frame\":%" PRIu64
                  ",\"from\":%u,\"ok\":%s,\"min_sinr_cdb\":%d",
                  b.node, b.frame_id, b.tx_node, b.ok ? "true" : "false",
                  b.min_sinr_cdb);
      break;
    }
    case trace::Category::kPhyCollision: {
      const auto& b = std::get<trace::PhyCollisionRecord>(r.body);
      std::printf(",\"node\":%u,\"frame\":%" PRIu64 ",\"reason\":\"%s\"",
                  b.node, b.frame_id, collision_reason_name(b.reason));
      break;
    }
    case trace::Category::kMacDefer: {
      const auto& b = std::get<trace::MacDeferRecord>(r.body);
      std::printf(",\"node\":%u,\"dst\":%u,\"deferred\":%s,\"reason\":\"%s\""
                  ",\"blocker_src\":%u,\"blocker_dst\":%u,\"until\":%" PRId64,
                  b.node, b.dst, b.deferred ? "true" : "false",
                  defer_reason_name(b.reason), b.blocker_src, b.blocker_dst,
                  b.until);
      break;
    }
    case trace::Category::kDeferTable: {
      const auto& b = std::get<trace::DeferTableRecord>(r.body);
      std::printf(",\"node\":%u,\"op\":\"%s\",\"dst\":%u,\"src\":%u"
                  ",\"via\":%u,\"my_rate\":%u,\"their_rate\":%u"
                  ",\"expires\":%" PRId64,
                  b.node, table_op_name(b.op), b.dst, b.src, b.via, b.my_rate,
                  b.their_rate, b.expires);
      break;
    }
    case trace::Category::kOngoing: {
      const auto& b = std::get<trace::OngoingRecord>(r.body);
      std::printf(",\"node\":%u,\"op\":\"%s\",\"src\":%u,\"dst\":%u"
                  ",\"end\":%" PRId64,
                  b.node, ongoing_op_name(b.op), b.src, b.dst, b.end_time);
      break;
    }
    case trace::Category::kMove: {
      const auto& b = std::get<trace::MoveRecord>(r.body);
      std::printf(",\"node\":%u,\"x_mm\":%" PRId64 ",\"y_mm\":%" PRId64,
                  b.node, b.x_mm, b.y_mm);
      break;
    }
    case trace::Category::kChannelEpoch: {
      const auto& b = std::get<trace::ChannelEpochRecord>(r.body);
      std::printf(",\"epoch\":%" PRIu64, b.epoch);
      break;
    }
    case trace::Category::kLog: {
      const auto& b = std::get<trace::LogRecord>(r.body);
      std::printf(",\"level\":%u,\"component\":\"%s\",\"message\":\"%s\"",
                  b.level, json_escape(b.component).c_str(),
                  json_escape(b.message).c_str());
      break;
    }
    case trace::Category::kCount:
      break;
  }
  std::printf("}\n");
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s FILE [--json] [--category NAME]... [--limit N]\n"
               "       %s FILE --replay-defer-table --tick T_NS [--node ID]\n"
               "       %s FILE --replay-ongoing --tick T_NS [--node ID]\n"
               "categories: phy_tx phy_rx phy_collision mac_defer"
               " defer_table ongoing move channel_epoch log\n",
               argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool json = false;
  bool replay = false;
  bool replay_ongoing = false;
  bool have_tick = false;
  bool have_node = false;
  long long tick = 0;
  unsigned long node = 0;
  long long limit = -1;
  std::uint32_t category_filter = 0;  // 0 = all

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--replay-defer-table") {
      replay = true;
    } else if (arg == "--replay-ongoing") {
      replay_ongoing = true;
    } else if (arg == "--tick" && i + 1 < argc) {
      tick = std::atoll(argv[++i]);
      have_tick = true;
    } else if (arg == "--node" && i + 1 < argc) {
      node = std::strtoul(argv[++i], nullptr, 10);
      have_node = true;
    } else if (arg == "--limit" && i + 1 < argc) {
      limit = std::atoll(argv[++i]);
    } else if (arg == "--category" && i + 1 < argc) {
      const std::string name = argv[++i];
      bool found = false;
      for (std::size_t c = 0; c < cmap::trace::kCategoryCount; ++c) {
        const auto cat = static_cast<cmap::trace::Category>(c);
        if (name == cmap::trace::category_name(cat)) {
          category_filter |= cmap::trace::bit(cat);
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown category: %s\n", name.c_str());
        return usage(argv[0]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);
  if (replay && replay_ongoing) {
    std::fprintf(stderr,
                 "--replay-defer-table and --replay-ongoing are exclusive\n");
    return usage(argv[0]);
  }
  if ((replay || replay_ongoing) && !have_tick) {
    std::fprintf(stderr, "%s requires --tick\n",
                 replay ? "--replay-defer-table" : "--replay-ongoing");
    return usage(argv[0]);
  }

  cmap::trace::TraceReader reader(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), reader.error().c_str());
    return 1;
  }

  if (replay) {
    // Replay semantics: apply every mutation with record tick <= T; the
    // reported set is each entry whose latest insert/refresh leaves
    // expires > T (DeferTable's own TTL-liveness rule).
    if ((reader.categories() &
         cmap::trace::bit(cmap::trace::Category::kDeferTable)) == 0) {
      std::fprintf(stderr,
                   "%s: trace was recorded without the defer_table "
                   "category; nothing to replay\n",
                   path.c_str());
      return 1;
    }
    if (reader.sample_every().size() >
            static_cast<std::size_t>(cmap::trace::Category::kDeferTable) &&
        reader.sample_every()[static_cast<std::size_t>(
            cmap::trace::Category::kDeferTable)] != 1) {
      std::fprintf(stderr,
                   "%s: defer_table records were sampled (every-%u); a "
                   "decimated mutation stream cannot be replayed\n",
                   path.c_str(),
                   reader.sample_every()[static_cast<std::size_t>(
                       cmap::trace::Category::kDeferTable)]);
      return 1;
    }
    cmap::trace::DeferTableReplay replayer;
    cmap::trace::Record r;
    while (reader.next(&r)) {
      if (r.tick > tick) break;
      replayer.apply(r);
    }
    if (!reader.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), reader.error().c_str());
      return 1;
    }
    std::vector<std::uint32_t> ids =
        have_node ? std::vector<std::uint32_t>{
                        static_cast<std::uint32_t>(node)}
                  : replayer.nodes();
    for (std::uint32_t id : ids) {
      const auto entries = replayer.live(id, tick);
      std::printf("node %u: %zu live entries at tick %lld\n", id,
                  entries.size(), tick);
      for (const auto& e : entries) {
        std::printf("  (%s: %s->%s) rates=%u/%u expires=%" PRId64 "\n",
                    id_or_star(e.dst).c_str(), id_or_star(e.src).c_str(),
                    id_or_star(e.via).c_str(), e.my_rate, e.their_rate,
                    e.expires);
      }
    }
    return 0;
  }

  if (replay_ongoing) {
    // Replay semantics mirror --replay-defer-table: apply every note/update
    // with record tick <= T; the reported set is each transmission whose
    // announced end time is still ahead of T (OngoingList's exclusive
    // end-time boundary).
    if ((reader.categories() &
         cmap::trace::bit(cmap::trace::Category::kOngoing)) == 0) {
      std::fprintf(stderr,
                   "%s: trace was recorded without the ongoing category; "
                   "nothing to replay\n",
                   path.c_str());
      return 1;
    }
    if (reader.sample_every().size() >
            static_cast<std::size_t>(cmap::trace::Category::kOngoing) &&
        reader.sample_every()[static_cast<std::size_t>(
            cmap::trace::Category::kOngoing)] != 1) {
      std::fprintf(stderr,
                   "%s: ongoing records were sampled (every-%u); a decimated "
                   "mutation stream cannot be replayed\n",
                   path.c_str(),
                   reader.sample_every()[static_cast<std::size_t>(
                       cmap::trace::Category::kOngoing)]);
      return 1;
    }
    cmap::trace::OngoingReplay replayer;
    cmap::trace::Record r;
    while (reader.next(&r)) {
      if (r.tick > tick) break;
      replayer.apply(r);
    }
    if (!reader.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), reader.error().c_str());
      return 1;
    }
    std::vector<std::uint32_t> ids =
        have_node ? std::vector<std::uint32_t>{
                        static_cast<std::uint32_t>(node)}
                  : replayer.nodes();
    for (std::uint32_t id : ids) {
      const auto entries = replayer.live(id, tick);
      std::printf("node %u: %zu ongoing transmissions at tick %lld\n", id,
                  entries.size(), tick);
      for (const auto& e : entries) {
        std::printf("  tx=%u->%u end=%" PRId64 "\n", e.src, e.dst, e.end_time);
      }
    }
    return 0;
  }

  cmap::trace::Record r;
  long long printed = 0;
  while (reader.next(&r)) {
    if (category_filter != 0 &&
        (category_filter & cmap::trace::bit(r.category)) == 0) {
      continue;
    }
    if (limit >= 0 && printed >= limit) break;
    if (json) {
      print_json(r);
    } else {
      print_text(r);
    }
    ++printed;
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), reader.error().c_str());
    return 1;
  }
  return 0;
}
