// trace_diff: align two .cmtrace streams record-by-record and report the
// first divergence — the 0-based record index, each stream's record (tick,
// category, decoded fields), or which stream ended first. The comparison
// is on payload bytes, so any field difference registers, including ones
// the human formatting rounds. Exit codes follow cmp/diff convention:
// 0 identical, 1 diverged, 2 usage or read error.
//
// Usage:
//   trace_diff FILE_A FILE_B [--context N]
//
// --context N re-reads stream A and prints the N records leading up to the
// divergence, which is usually enough to see what the two runs disagreed
// about without dumping both files.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/reader.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s FILE_A FILE_B [--context N]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path_a;
  std::string path_b;
  long long context = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--context" && i + 1 < argc) {
      context = std::atoll(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path_a.empty()) {
      path_a = arg;
    } else if (path_b.empty()) {
      path_b = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path_b.empty()) return usage(argv[0]);

  cmap::trace::TraceReader a(path_a);
  if (!a.ok()) {
    std::fprintf(stderr, "%s: %s\n", path_a.c_str(), a.error().c_str());
    return 2;
  }
  cmap::trace::TraceReader b(path_b);
  if (!b.ok()) {
    std::fprintf(stderr, "%s: %s\n", path_b.c_str(), b.error().c_str());
    return 2;
  }

  const cmap::trace::Divergence d = cmap::trace::first_divergence(a, b);

  // A stream that stopped on a decode error is a read failure, not a clean
  // comparison result — report it as such even if the records agreed so
  // far.
  if (!a.ok()) {
    std::fprintf(stderr, "%s: %s\n", path_a.c_str(), a.error().c_str());
    return 2;
  }
  if (!b.ok()) {
    std::fprintf(stderr, "%s: %s\n", path_b.c_str(), b.error().c_str());
    return 2;
  }

  if (!d.diverged) {
    std::printf("identical: %" PRIu64 " records\n", d.index);
    return 0;
  }

  if (context > 0) {
    // Re-read stream A from the top for the lead-up; both streams agree on
    // every record before the divergence, so A's prefix speaks for both.
    cmap::trace::TraceReader lead(path_a);
    cmap::trace::Record r;
    const std::uint64_t from =
        d.index > static_cast<std::uint64_t>(context)
            ? d.index - static_cast<std::uint64_t>(context)
            : 0;
    for (std::uint64_t i = 0; i < d.index && lead.next(&r); ++i) {
      if (i < from) continue;
      std::printf("  =%-6" PRIu64 " %s\n", i,
                  cmap::trace::describe(r).c_str());
    }
  }

  std::printf("divergence at record %" PRIu64 "\n", d.index);
  if (d.a_ended) {
    std::printf("  a: <end of stream>\n");
  } else {
    std::printf("  a: %s\n", cmap::trace::describe(d.a).c_str());
  }
  if (d.b_ended) {
    std::printf("  b: <end of stream>\n");
  } else {
    std::printf("  b: %s\n", cmap::trace::describe(d.b).c_str());
  }
  return 1;
}
