// Fixture: the negative control -- idiomatic cmap code the linter must
// accept without any annotation.  Sorted emit from an unordered map,
// const statics, simulation-time arithmetic, string contents that look
// like violations but are data, and a genuinely-annotated traversal.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace {
constexpr std::uint64_t kSeedMix = 0x9e3779b97f4a7c15ull;
const std::string kBanner = "std::rand() and time(nullptr) are banned";
}  // namespace

struct Stats {
  std::unordered_map<std::uint32_t, double> per_node_;

  std::vector<std::pair<std::uint32_t, double>> sorted_rows() const {
    std::vector<std::pair<std::uint32_t, double>> rows;
    rows.reserve(per_node_.size());
    // cmap-lint: allow(unordered-iter) -- rows are sorted by key before
    // any caller sees them, so hash order never escapes this function.
    for (const auto& [node, value] : per_node_) {
      rows.emplace_back(node, value);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }
};

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= kSeedMix;
  return x ^ static_cast<std::uint64_t>(kBanner.size());
}
