// Fixture: mutable-static must fire on hidden shared state.
#include <cstdint>

static std::uint64_t g_counter = 0;       // violation: mutable namespace static
thread_local int t_depth = 0;             // violation: thread_local state

int bump() {
  static int calls;                       // violation: function-local static
  ++calls;
  ++t_depth;
  return static_cast<int>(++g_counter) + calls;
}
