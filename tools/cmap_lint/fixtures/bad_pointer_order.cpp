// Fixture: pointer-order must fire on each seeded violation.
#include <cstdint>
#include <functional>
#include <map>

struct Node {};

std::size_t order_by_address(Node* n) {
  std::map<Node*, int> ranks;                      // violation: pointer key
  ranks[n] = 1;
  std::hash<Node*> h;                              // violation: hash<T*>
  auto v = reinterpret_cast<std::uintptr_t>(n);    // violation: uintptr cast
  return h(n) + v + ranks.size();
}
