// Fixture: raw-thread must fire outside the blessed concurrency layer.
#include <future>
#include <thread>

void fan_out() {
  std::thread t([] {});                        // violation: raw std::thread
  auto f = std::async(std::launch::async, [] { return 1; });  // violation
  t.join();
  f.get();
}
