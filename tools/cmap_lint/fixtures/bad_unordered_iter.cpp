// Fixture: unordered-iter must fire on hash-order traversals.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Table {
  std::unordered_map<std::uint64_t, int> cells_;
  std::unordered_set<std::uint32_t> members_;

  std::vector<int> dump() const {
    std::vector<int> out;
    for (const auto& [k, v] : cells_) {  // violation: range-for, hash order
      out.push_back(v);
    }
    out.assign(members_.begin(), members_.end());  // violation: .begin()
    return out;
  }
};
