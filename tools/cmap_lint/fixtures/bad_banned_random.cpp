// Fixture: banned-random must fire on each seeded violation.
#include <cstdlib>
#include <random>

int entropy() {
  std::random_device rd;                  // violation: hardware entropy
  std::srand(42);                         // violation: global C RNG seed
  return std::rand() + static_cast<int>(rd());  // violation: std::rand
}
