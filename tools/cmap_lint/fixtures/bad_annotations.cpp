// Fixture: annotation misuse must itself be flagged.
#include <cstdint>

// cmap-lint: allow(mutable-static)
static std::uint64_t g_no_reason = 0;  // bad-annotation: missing -- reason

// cmap-lint: allow(no-such-rule) -- made-up rule name
static std::uint64_t g_bad_rule = 0;   // bad-annotation + mutable-static

// cmap-lint: allow(banned-random) -- nothing random below, so this is dead
std::uint64_t read_both() { return g_no_reason + g_bad_rule; }
