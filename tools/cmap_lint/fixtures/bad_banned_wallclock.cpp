// Fixture: banned-wallclock must fire on each seeded violation.
#include <chrono>
#include <ctime>

long now_ns() {
  auto t = std::chrono::steady_clock::now();  // violation: steady_clock
  std::time_t wall = time(nullptr);           // violation: time(nullptr)
  return t.time_since_epoch().count() + wall + clock();  // violation: clock()
}
