#!/usr/bin/env python3
"""Self-test for cmap_lint: every seeded fixture violation must be
flagged (per rule, with the expected count and lines), the clean
fixture must pass, and the annotation machinery must both silence real
findings and reject malformed / dead annotations.

Run directly or via ctest (registered as `cmap_lint_selftest`)."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "cmap_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, "--json", *args],
        capture_output=True, text=True)
    findings = json.loads(proc.stdout) if proc.stdout.strip() else []
    return proc.returncode, findings


def fixture(name):
    return os.path.join(FIXTURES, name)


class FixtureViolations(unittest.TestCase):
    """Each bad fixture must fail with exactly the seeded findings."""

    def assert_rule_hits(self, path, rule, expected_lines):
        code, findings = run_lint(fixture(path))
        self.assertEqual(code, 1, f"{path} should fail the lint")
        hits = sorted(f["line"] for f in findings if f["rule"] == rule)
        self.assertEqual(hits, sorted(expected_lines),
                         f"{path}: wrong {rule} lines: {findings}")
        extra = [f for f in findings if f["rule"] != rule]
        self.assertEqual(extra, [], f"{path}: unexpected extra findings")

    def test_banned_random(self):
        self.assert_rule_hits(
            "bad_banned_random.cpp", "banned-random", [6, 7, 8])

    def test_banned_wallclock(self):
        self.assert_rule_hits(
            "bad_banned_wallclock.cpp", "banned-wallclock", [6, 7, 8])

    def test_pointer_order(self):
        self.assert_rule_hits(
            "bad_pointer_order.cpp", "pointer-order", [9, 11, 12])

    def test_unordered_iter(self):
        self.assert_rule_hits(
            "bad_unordered_iter.cpp", "unordered-iter", [13, 16])

    def test_raw_thread(self):
        self.assert_rule_hits(
            "bad_raw_thread.cpp", "raw-thread", [6, 7])

    def test_mutable_static(self):
        self.assert_rule_hits(
            "bad_mutable_static.cpp", "mutable-static", [4, 5, 8])


class AnnotationHandling(unittest.TestCase):
    def test_bad_annotations_flagged(self):
        code, findings = run_lint(fixture("bad_annotations.cpp"))
        self.assertEqual(code, 1)
        rules = sorted(f["rule"] for f in findings)
        # Two malformed annotations, one dead one, and the two statics
        # they fail to silence (the valid-looking-but-reasonless one
        # silences nothing; the unknown-rule one silences nothing).
        self.assertEqual(rules.count("bad-annotation"), 2, findings)
        self.assertEqual(rules.count("unused-annotation"), 1, findings)
        self.assertEqual(rules.count("mutable-static"), 2, findings)

    def test_allow_file_scope(self):
        src = (
            "// cmap-lint: allow-file(mutable-static) -- test scratch file\n"
            "static int g_a = 0;\n"
            "static int g_b = 0;\n"
            "int sum() { return ++g_a + ++g_b; }\n")
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cpp", delete=False) as f:
            f.write(src)
            path = f.name
        try:
            code, findings = run_lint(path)
            self.assertEqual(code, 0, findings)
            self.assertEqual(findings, [])
        finally:
            os.unlink(path)

    def test_preceding_line_annotation(self):
        src = (
            "// cmap-lint: allow(mutable-static) -- counter local to test\n"
            "static int g_count = 0;\n"
            "int bump() { return ++g_count; }\n")
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cpp", delete=False) as f:
            f.write(src)
            path = f.name
        try:
            code, findings = run_lint(path)
            self.assertEqual(code, 0, findings)
        finally:
            os.unlink(path)


class CleanFixture(unittest.TestCase):
    def test_clean_passes(self):
        code, findings = run_lint(fixture("clean.cpp"))
        self.assertEqual(code, 0, f"clean fixture flagged: {findings}")
        self.assertEqual(findings, [])

    def test_all_bad_fixtures_fail(self):
        """Belt and braces: no bad fixture may ever pass silently."""
        for name in sorted(os.listdir(FIXTURES)):
            if not name.startswith("bad_"):
                continue
            code, findings = run_lint(fixture(name))
            self.assertEqual(code, 1, f"{name} unexpectedly clean")
            self.assertGreater(len(findings), 0, name)


class DriverBehaviour(unittest.TestCase):
    def test_missing_file_is_usage_error(self):
        code, _ = run_lint(fixture("no_such_file.cpp"))
        self.assertEqual(code, 2)

    def test_list_rules(self):
        proc = subprocess.run(
            [sys.executable, LINT, "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0)
        for rule in ("banned-random", "unordered-iter", "mutable-static"):
            self.assertIn(rule, proc.stdout)

    def test_string_and_comment_contents_ignored(self):
        src = (
            "#include <string>\n"
            "// std::rand() in a comment is fine\n"
            "/* so is time(nullptr) in a block comment */\n"
            'const std::string kDoc = "std::rand() time(nullptr)";\n'
            "const char* raw = R\"(random_device std::thread)\";\n")
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cpp", delete=False) as f:
            f.write(src)
            path = f.name
        try:
            code, findings = run_lint(path)
            self.assertEqual(code, 0, findings)
        finally:
            os.unlink(path)


if __name__ == "__main__":
    unittest.main()
