#!/usr/bin/env python3
"""cmap_lint: determinism lint for the cmap simulator.

Every fast path in this repository is gated on byte-identical reports
across thread counts, link-state modes, and fast-vs-reference oracles
(see docs/determinism.md).  That contract is enforced dynamically by
golden tests, but a golden test only catches a nondeterminism source
once a scenario happens to tickle it.  This tool is the static side of
the contract: it walks the translation units named by
compile_commands.json (plus every header under src/) and rejects, at
CI time, the constructs that historically break byte-identity.

Rules
-----
  banned-random     std::rand / srand / std::random_device.  All
                    randomness must come from sim::Rng / sim::mix64
                    substreams keyed on stable ids, never from global
                    C RNG state or hardware entropy.
  banned-wallclock  time(), clock(), gettimeofday, clock_gettime,
                    localtime/gmtime, and std::chrono::system_clock /
                    steady_clock / high_resolution_clock.  Simulation
                    time is sim::Time; wall-clock reads make output
                    depend on the host.  Bench drivers that time
                    themselves live outside src/ and are not linted.
  pointer-order     Hashing or ordering raw pointer values:
                    std::hash<T*>, std::less<T*>, std::map/std::set
                    keyed on a pointer type, and
                    reinterpret_cast<uintptr_t>.  Pointer values vary
                    run to run (ASLR, allocation order), so any
                    ordering derived from them is nondeterministic.
  unordered-iter    Iterating a std::unordered_map/std::unordered_set
                    (range-for over it, or calling .begin()/.cbegin()
                    on it).  Iteration order is hash-order: stable
                    within one process but not across standard
                    libraries, so any iteration whose order can reach
                    reports, traces, the wire, or RNG consumption must
                    be sorted before emit -- or proven order-free and
                    annotated.
  raw-thread        std::thread / std::jthread / std::async /
                    pthread_create outside the blessed concurrency
                    layer (sim/parallel.*, sim/log.*).  All fan-out
                    must go through sim::parallel_for so the
                    results-are-thread-count-invariant argument stays
                    in one place.
  mutable-static    Namespace-scope / function-local / thread_local
                    mutable state.  Hidden shared state either races
                    under SweepRunner or couples runs that must be
                    independent.  const/constexpr objects are fine.

Annotations
-----------
A finding is silenced with an annotation comment carrying a reason:

    // cmap-lint: allow(<rule>[, <rule>...]) -- <reason>

on the offending line or the line directly above it.  A whole file is
exempted from one rule with a file-level annotation in the first 20
lines:

    // cmap-lint: allow-file(<rule>) -- <reason>

The reason is mandatory; an annotation without `-- <reason>` is itself
an error (rule `bad-annotation`), as is an annotation that names an
unknown rule or one that silences nothing (`unused-annotation`).

Usage
-----
    cmap_lint.py --compile-commands build/compile_commands.json \
                 [--root src] [--json]
    cmap_lint.py file.cpp [file2.h ...]          # explicit file mode
    cmap_lint.py --list-rules

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

RULES = {
    "banned-random": "global / hardware RNG (std::rand, std::random_device)",
    "banned-wallclock": "wall-clock reads (time(), chrono system/steady clocks)",
    "pointer-order": "ordering or hashing raw pointer values",
    "unordered-iter": "iteration over std::unordered_map/std::unordered_set",
    "raw-thread": "raw threads outside sim/parallel.* / sim/log.*",
    "mutable-static": "mutable static / thread_local state",
    "bad-annotation": "malformed cmap-lint annotation",
    "unused-annotation": "annotation that silences no finding",
}

# Files allowed to use raw threads: the blessed concurrency layer.
THREAD_ALLOWED = ("sim/parallel.", "sim/log.")

ANNOT_RE = re.compile(
    r"cmap-lint:\s*(allow|allow-file)\(([^)]*)\)\s*(--\s*(.*\S))?")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: error: [{self.rule}] {self.message}"


@dataclass
class Annotation:
    line: int
    rules: tuple
    file_level: bool
    valid: bool
    used: bool = False


@dataclass
class SourceFile:
    """A source file with comments/literals stripped but lines preserved."""

    path: str
    raw_lines: list = field(default_factory=list)
    code_lines: list = field(default_factory=list)   # stripped of comments
    annotations: list = field(default_factory=list)  # Annotation per site


def strip_source(text: str) -> list:
    """Blank out comments, string and char literals, preserving line
    structure so findings carry real line numbers.  Comment text is
    handled separately (annotations are parsed from raw lines)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal?  R"delim( ... )delim"
                if out and out[-1] == "R":
                    m = re.match(r'R"([^()\\ ]{0,16})\(', text[i - 1:])
                    if m:
                        delim = m.group(1)
                        close = text.find(")" + delim + '"', i)
                        if close == -1:
                            close = n
                        seg = text[i:close + len(delim) + 2]
                        out.append("".join("\n" if ch == "\n" else " "
                                           for ch in seg))
                        i += len(seg)
                        continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        else:  # string or char
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (state == "string" and c == '"') or (
                    state == "char" and c == "'"):
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out).split("\n")


def parse_annotations(raw_lines: list) -> list:
    annotations = []
    for lineno, line in enumerate(raw_lines, start=1):
        if "cmap-lint:" not in line:
            continue
        m = ANNOT_RE.search(line)
        if not m:
            annotations.append(
                Annotation(lineno, (), False, valid=False))
            continue
        kind, rule_list, _, reason = m.groups()
        rules = tuple(r.strip() for r in rule_list.split(",") if r.strip())
        valid = bool(reason) and bool(rules) and all(
            r in RULES for r in rules)
        annotations.append(
            Annotation(lineno, rules, kind == "allow-file", valid))
    return annotations


def load_file(path: str) -> SourceFile:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    sf = SourceFile(path=path)
    sf.raw_lines = text.split("\n")
    sf.code_lines = strip_source(text)
    sf.annotations = parse_annotations(sf.raw_lines)
    return sf


# --------------------------------------------------------------- helpers --

IDENT = r"[A-Za-z_][A-Za-z0-9_]*"


def find_matching_angle(text: str, open_idx: int) -> int:
    """Index of the '>' matching the '<' at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i
    return -1


def collect_unordered_names(files: list) -> set:
    """Project-wide pass: every identifier declared with an
    unordered_map/unordered_set type (variables, members, and aliases,
    including declarations whose type is such an alias)."""
    names = set()
    aliases = set()
    decl_re = re.compile(
        r"\bunordered_(?:map|set|multimap|multiset)\s*<")
    using_re = re.compile(
        r"\busing\s+(" + IDENT + r")\s*=\s*[^;]*\bunordered_")
    for sf in files:
        text = "\n".join(sf.code_lines)
        for m in using_re.finditer(text):
            aliases.add(m.group(1))
    alias_decl = None
    if aliases:
        alias_decl = re.compile(
            r"\b(?:" + "|".join(re.escape(a) for a in aliases) +
            r")\s+(" + IDENT + r")\s*[;={]")
    for sf in files:
        text = "\n".join(sf.code_lines)
        for m in decl_re.finditer(text):
            close = find_matching_angle(text, m.end() - 1)
            if close == -1:
                continue
            tail = text[close + 1:close + 160]
            dm = re.match(r"\s*&?\s*(" + IDENT + r")\s*[;={(]", tail)
            if dm:
                names.add(dm.group(1))
        if alias_decl:
            for m in alias_decl.finditer(text):
                names.add(m.group(1))
    return names


# ----------------------------------------------------------------- rules --

def check_banned_random(sf: SourceFile):
    pats = [
        (re.compile(r"\bstd::rand\b|\b(?:std::)?srand\s*\("),
         "global C RNG; derive randomness from sim::Rng substreams"),
        (re.compile(r"\brandom_device\b"),
         "hardware entropy is nondeterministic; seed from the scenario"),
        (re.compile(r"(?<![:\w.])rand\s*\(\s*\)"),
         "global C RNG; derive randomness from sim::Rng substreams"),
    ]
    for lineno, line in enumerate(sf.code_lines, start=1):
        for pat, why in pats:
            if pat.search(line):
                yield Finding(sf.path, lineno, "banned-random", why)
                break


def check_banned_wallclock(sf: SourceFile):
    pats = [
        re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)"
                   r"\s*::"),
        re.compile(r"\bstd::time\s*\(|(?<![:\w.>])time\s*\(\s*"
                   r"(?:nullptr|NULL|0)\s*\)"),
        re.compile(r"\bgettimeofday\s*\(|\bclock_gettime\s*\("),
        re.compile(r"(?<![:\w.>])clock\s*\(\s*\)"),
        re.compile(r"\b(?:localtime|gmtime)(?:_r)?\s*\("),
    ]
    why = ("wall-clock read; simulation output must be a pure function "
           "of (config, seed) -- use sim::Time")
    for lineno, line in enumerate(sf.code_lines, start=1):
        if any(p.search(line) for p in pats):
            yield Finding(sf.path, lineno, "banned-wallclock", why)


def check_pointer_order(sf: SourceFile):
    pats = [
        (re.compile(r"\bstd::hash\s*<[^>;]*\*\s*>"),
         "std::hash over a pointer type hashes the address"),
        (re.compile(r"\bstd::less\s*<[^>;]*\*\s*>"),
         "std::less over a pointer type orders by address"),
        (re.compile(r"\bstd::(?:map|set|multimap|multiset)\s*<\s*"
                    r"[A-Za-z_][\w:]*\s*\*"),
         "ordered container keyed on a pointer orders by address"),
        (re.compile(r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>"),
         "pointer-to-integer cast; the value depends on allocation"),
    ]
    for lineno, line in enumerate(sf.code_lines, start=1):
        for pat, why in pats:
            if pat.search(line):
                yield Finding(sf.path, lineno, "pointer-order", why)
                break


def make_unordered_iter_check(names: set):
    if names:
        alt = "|".join(re.escape(n) for n in sorted(names))
        # `x.begin()` with x an unordered name, incl. `obj.x.begin()`.
        member_begin_re = re.compile(
            r"\b(?:" + alt + r")\s*\.\s*c?begin\s*\(")
        range_for_re = re.compile(
            r"\bfor\s*\(([^;]*?):([^)]*)\)")
        name_token = re.compile(r"\b(?:" + alt + r")\b")
    else:
        member_begin_re = range_for_re = name_token = None

    def check(sf: SourceFile):
        if not names:
            return
        why = ("iteration order of an unordered container is hash-order; "
               "sort before emit or prove order-free and annotate")
        for lineno, line in enumerate(sf.code_lines, start=1):
            if member_begin_re.search(line):
                yield Finding(sf.path, lineno, "unordered-iter", why)
                continue
            m = range_for_re.search(line)
            if m and name_token.search(m.group(2)):
                yield Finding(sf.path, lineno, "unordered-iter", why)

    return check


def check_raw_thread(sf: SourceFile, rel: str):
    if any(a in rel for a in THREAD_ALLOWED):
        return
    pats = [
        re.compile(r"\bstd::(?:thread|jthread)\b(?!\s*::\s*hardware)"),
        re.compile(r"\bstd::async\s*\("),
        re.compile(r"\bpthread_create\s*\("),
    ]
    why = ("raw thread outside sim/parallel.*; fan out through "
           "sim::parallel_for so determinism arguments stay in one place")
    for lineno, line in enumerate(sf.code_lines, start=1):
        if any(p.search(line) for p in pats):
            yield Finding(sf.path, lineno, "raw-thread", why)


STATIC_DECL_RE = re.compile(
    r"^\s*(?:inline\s+)?(static|thread_local)\b(?:\s+(?:inline|static|"
    r"thread_local))*\s+(?P<rest>.*)$")


def check_mutable_static(sf: SourceFile, rel: str):
    if any(a in rel for a in THREAD_ALLOWED):
        return
    why = ("mutable static state is shared across runs/threads; make it "
           "const, pass it explicitly, or annotate why it is safe")
    for lineno, line in enumerate(sf.code_lines, start=1):
        m = STATIC_DECL_RE.match(line)
        if not m:
            continue
        rest = m.group("rest")
        if re.match(r"\s*(const\b|constexpr\b|constinit\b)", rest):
            continue
        # Skip function declarations/definitions: a '(' that opens an
        # argument list before any '=' / ';' terminator.  Variable
        # initializers like `static Foo x(1);` are indistinguishable
        # lexically from declarations in some spots; prefer flagging
        # `Type name;` / `Type name = ...` / `Type* name = ...` shapes.
        decl = re.match(
            r"(?:[\w:<>,\s]|\*|&)+?\b(" + IDENT + r")\s*(=|;|\{|\()", rest)
        if not decl:
            continue
        if decl.group(2) == "(":
            continue  # function declaration (or direct-init; see docs)
        yield Finding(sf.path, lineno, "mutable-static", why)


# ------------------------------------------------------------ the driver --

def apply_annotations(sf: SourceFile, findings: list) -> list:
    """Filter findings through the file's annotations; emit
    bad-annotation / unused-annotation findings as needed."""
    out = []
    file_allows = {}
    for a in sf.annotations:
        if a.file_level and a.valid and a.line <= 20:
            for r in a.rules:
                file_allows.setdefault(r, a)
    line_allows = {}
    for a in sf.annotations:
        if not a.valid or a.file_level:
            continue
        # The annotation covers its own line plus the next line that
        # actually holds code (so a reason wrapped over several comment
        # lines still reaches the statement below it).
        covered = {a.line}
        for idx in range(a.line, min(len(sf.code_lines), a.line + 8)):
            if sf.code_lines[idx].strip():
                covered.add(idx + 1)
                break
        for c in covered:
            line_allows.setdefault(c, []).append(a)

    for f in findings:
        if f.rule in file_allows:
            file_allows[f.rule].used = True
            continue
        silenced = False
        for a in line_allows.get(f.line, []):
            if f.rule in a.rules:
                a.used = True
                silenced = True
                break
        if not silenced:
            out.append(f)

    for a in sf.annotations:
        if not a.valid:
            out.append(Finding(
                sf.path, a.line, "bad-annotation",
                "annotation must be `cmap-lint: allow(<rule>) -- <reason>` "
                "with known rule names and a reason"))
        elif not a.used:
            out.append(Finding(
                sf.path, a.line, "unused-annotation",
                "annotation silences no finding; delete it so allows "
                "cannot rot"))
    return out


def lint_file(sf: SourceFile, rel: str, unordered_check) -> list:
    findings = []
    findings += list(check_banned_random(sf))
    findings += list(check_banned_wallclock(sf))
    findings += list(check_pointer_order(sf))
    findings += list(unordered_check(sf))
    findings += list(check_raw_thread(sf, rel))
    findings += list(check_mutable_static(sf, rel))
    findings.sort(key=lambda f: (f.line, f.rule))
    return apply_annotations(sf, findings)


def files_from_compile_commands(cc_path: str, root: str) -> list:
    try:
        with open(cc_path, "r", encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cmap_lint: cannot read {cc_path}: {e}", file=sys.stderr)
        sys.exit(2)
    root_abs = os.path.abspath(root)
    paths = set()
    for entry in entries:
        p = entry.get("file", "")
        if not os.path.isabs(p):
            p = os.path.join(entry.get("directory", "."), p)
        p = os.path.abspath(p)
        if p.startswith(root_abs + os.sep) and os.path.exists(p):
            paths.add(p)
    # Headers never appear in compile_commands; lint everything under
    # the root so header-only logic is covered too.
    for dirpath, _, filenames in os.walk(root_abs):
        for name in filenames:
            if name.endswith((".h", ".hpp", ".inl")):
                paths.add(os.path.join(dirpath, name))
    return sorted(paths)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="cmap_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*", help="explicit files to lint")
    ap.add_argument("--compile-commands", metavar="JSON",
                    help="compile_commands.json to derive the TU list from")
    ap.add_argument("--root", default="src",
                    help="only lint files under this directory "
                         "(default: src)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as JSON")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:18} {desc}")
        return 0

    if args.compile_commands:
        paths = files_from_compile_commands(args.compile_commands, args.root)
    elif args.files:
        paths = [os.path.abspath(p) for p in args.files]
        missing = [p for p in paths if not os.path.exists(p)]
        if missing:
            for p in missing:
                print(f"cmap_lint: no such file: {p}", file=sys.stderr)
            return 2
    else:
        ap.print_usage(sys.stderr)
        print("cmap_lint: need --compile-commands or explicit files",
              file=sys.stderr)
        return 2

    root_abs = os.path.abspath(args.root)
    sources = [load_file(p) for p in paths]
    unordered_check = make_unordered_iter_check(
        collect_unordered_names(sources))

    all_findings = []
    for sf in sources:
        rel = os.path.relpath(sf.path, root_abs).replace(os.sep, "/")
        all_findings += lint_file(sf, rel, unordered_check)

    if args.json:
        print(json.dumps([f.__dict__ for f in all_findings], indent=2))
    else:
        for f in all_findings:
            print(f.format())
    if all_findings:
        print(f"cmap_lint: {len(all_findings)} finding(s) in "
              f"{len(sources)} file(s)", file=sys.stderr)
        return 1
    print(f"cmap_lint: clean ({len(sources)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
