#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares the timing rows emitted by the bench drivers (stats::SweepReport
JSONs with a trailing "timing"-scheme row each) against the committed
baseline, and optionally checks the fast-path speedup ratios from a Google
Benchmark JSON produced by bench_micro.

Eight timing rows are gated today, matched by scenario name across however
many --pr files are given:
  dense_grid_bench       (bench_dense_grid)      — simulation hot path
  testbed_measure_bench  (bench_testbed_measure) — measurement pass; its
      measure_speedup metric (fast vs reference mode, both timed in the
      same process) is enforced as a raw machine-independent minimum.
  mac_decide_bench       (bench_mac_decide)      — CMAP send decision; its
      mac_decide_speedup metric (indexed fast path vs reference scan at
      high flow concurrency) is enforced the same way, and decisions_match
      must be 1.0 (the two paths answered byte-identically).
  mobility_bench         (bench_mobility)        — gain-cache maintenance
      under node mobility; its mobility_speedup metric (incremental
      row/column invalidation vs full O(n^2) rebuild per move) is enforced
      the same way, and mobility_states_match must be 1.0 (both policies
      left bit-identical caches).
  trace_bench            (bench_trace)           — trace-subsystem cost; its
      trace_overhead_off metric (CPU time with a Tracer attached but all
      categories disabled vs untraced, both timed in the same process) is
      enforced as a fixed maximum of 1.02: disabled instrumentation must
      stay within 2% of free.
  metrics_bench          (bench_metrics)         — metrics-subsystem cost;
      its metrics_overhead_off metric (CPU time with a counter Registry
      attached but all domains disabled vs unmetered, both timed in the
      same process) is enforced under the same fixed 1.02 maximum as the
      trace gate, for the same reason: a disabled instrumentation site is
      one branch on a cached mask.
  metro_bench            (bench_metro)           — sparse link-state memory
      at the 10,000-node metro scale; its metro_sparse_peak_rss_mb metric
      (process peak RSS taken before any dense-store work runs) is
      enforced as a fixed maximum of 256 MB. The dense O(n^2) pair state
      would need ~1.6 GB for the measurement matrices alone, so any layer
      silently re-densifying fails the gate outright rather than creeping.
      metro_stored_links is exact: same seed, same culling geometry, same
      sparse link count — a drift means the spatial index or cull floor
      changed behavior.
  pdes_bench             (bench_pdes)            — intra-run parallel event
      execution; its pdes_reports_match metric is 1.0 when the partitioned
      executive (2 and 4 partitions, worker threads on) produced
      SweepReports byte-identical to the serial single-queue oracle — the
      contract that licenses PDES at all (docs/pdes.md). pdes_speedup and
      dispatch_speedup ride as info: the CI container is effectively
      single-core, so wall-clock parallel speedup is not meaningful there,
      and the dispatch row (copy-style vs move-on-pop event dispatch, both
      timed in-process) is a documentation number, not a gate.

Wall-clock comparisons (metrics ending in "_ms") are normalized by each
row's own calibration_ms (a fixed CPU-bound workload timed on the same
machine), so a slower or faster CI runner does not masquerade as a code
regression; only changes relative to the machine's own speed count. The
gate fails when a normalized timing exceeds baseline * threshold (default
1.25, i.e. >25% regression).

Refresh the baseline after an intentional performance change by re-running
the CI bench recipe locally (see .github/workflows/ci.yml, job
bench-regression) and committing the merged reports as
bench/baselines/BENCH_baseline.json (the runs arrays concatenated).
"""

import argparse
import json
import sys

CALIBRATION_KEY = "calibration_ms"
# Workload knobs compared for exact equality (not timings): a wall-clock
# comparison is only meaningful when the PR ran the same workload the
# baseline did.
EXACT_KEYS = {"nodes", "configs", "run_seconds", "threads", "measure_threads",
              "flows", "decisions", "moves", "metro_stored_links", "events"}
# Metrics enforced as raw minimums (machine-independent ratios measured
# within one process). Values name the argparse option carrying the bound.
MIN_KEYS = {"measure_speedup": "min_measure_speedup",
            "mac_decide_speedup": "min_mac_decide_speedup",
            "mobility_speedup": "min_mobility_speedup"}
# Metrics enforced as fixed minimums: cache_hit is 1.0 when the second
# TestbedCache request returned the identical instance, decisions_match /
# mobility_states_match are 1.0 when the fast and reference paths answered
# (or left the cache) byte-identical, pdes_reports_match is 1.0 when the
# partitioned executive reproduced the serial oracle's SweepReport
# byte-for-byte at 2 and 4 partitions — a miss on any is the regression
# the bench exists to catch, not a diagnostic.
FIXED_MIN_KEYS = {"cache_hit": 1.0, "decisions_match": 1.0,
                  "mobility_states_match": 1.0, "pdes_reports_match": 1.0}
# Metrics enforced as fixed maximums (machine-independent quantities,
# like FIXED_MIN_KEYS but bounded from above):
# trace_overhead_off is the CPU-time ratio of a sweep with a Tracer
# attached but every category disabled vs the same sweep untraced — the
# trace subsystem's bounded-overhead guarantee (each disabled site is one
# branch on a cached mask) that makes it safe to leave compiled in.
# metrics_overhead_off is the identical guarantee for the metrics
# subsystem (bench_metrics): a sweep with a counter Registry attached but
# every domain disabled vs the same sweep unmetered, bounded the same way
# because each disabled instrumentation site is one branch on a
# MetricsHook's cached mask.
# metro_sparse_peak_rss_mb is bench_metro's process peak RSS after the
# sparse 10k-node build + sweep and before any dense work: the sparse
# stores measure ~21 MB while the dense pair matrices alone would be
# ~1.6 GB, so 256 MB is ~12x headroom for allocator noise yet an order of
# magnitude below what any re-densified layer would cost.
FIXED_MAX_KEYS = {"trace_overhead_off": 1.02,
                  "metrics_overhead_off": 1.02,
                  "metro_sparse_peak_rss_mb": 256.0}
# Reported, never gated: non-timing diagnostics, plus the reference
# oracles' runtimes — they exist only as denominators of the gated speedup
# ratios, and their ~1 s baselines sit close enough to MIN_GATED_MS that
# normalized-runtime gating would flake on shared runners without guarding
# anything the speedup gates do not. The trace and metrics benches' raw
# mode timings exist only as terms of their gated *_overhead_off ratios.
INFO_KEYS = {"max_abs_delta_prr", "table_entries", "decide_reference_cpu_ms",
             "move_reference_cpu_ms", "trace_untraced_cpu_ms",
             "trace_disabled_cpu_ms", "trace_enabled_cpu_ms",
             "metrics_unmetered_cpu_ms", "metrics_disabled_cpu_ms",
             "metrics_enabled_cpu_ms",
             # bench_pdes: terms of the info-only pdes_speedup /
             # dispatch_speedup ratios. The PDES wall timings run worker
             # threads, so wall clock on a shared runner is scheduler noise
             # the calibration ratio cannot correct.
             "pdes_serial_wall_ms", "pdes_p4_wall_ms",
             "dispatch_copy_cpu_ms", "dispatch_move_cpu_ms"}
# Timings whose baseline is shorter than this are reported but not gated:
# sub-second samples on shared CI runners are dominated by scheduler and
# cache noise that the calibration ratio cannot correct.
MIN_GATED_MS = 1000.0


def load_timing_rows(paths):
    """scenario -> metrics, merged across report files."""
    rows = {}
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        for run in report.get("runs", []):
            if run.get("scheme") != "timing":
                continue
            scenario = run.get("scenario", "?")
            if scenario in rows:
                sys.exit(f"error: duplicate timing row for '{scenario}'")
            rows[scenario] = run.get("metrics", {})
    if not rows:
        sys.exit(f"error: no timing rows found in {', '.join(paths)}")
    return rows


def check_timing_row(scenario, pr, base, threshold, minimums):
    for key in (CALIBRATION_KEY,):
        if key not in pr or key not in base:
            sys.exit(f"error: missing {key} in '{scenario}' timing rows")
    pr_calib, base_calib = pr[CALIBRATION_KEY], base[CALIBRATION_KEY]
    if pr_calib <= 0 or base_calib <= 0:
        sys.exit("error: non-positive calibration time")

    failures = []
    for key, base_val in sorted(base.items()):
        if key == CALIBRATION_KEY:
            continue
        label = f"{scenario}/{key}"
        if key not in pr:
            failures.append(f"{label}: missing from PR report")
            continue
        if key in EXACT_KEYS:
            if pr[key] != base_val:
                failures.append(f"{label}: PR ran with {pr[key]}, baseline "
                                f"{base_val} (bench knobs must match the "
                                "baseline)")
            continue
        if key in MIN_KEYS or key in FIXED_MIN_KEYS:
            minimum = minimums[MIN_KEYS[key]] if key in MIN_KEYS \
                else FIXED_MIN_KEYS[key]
            status = "FAIL" if pr[key] < minimum else "ok"
            print(f"[{status}] {label}: {pr[key]:.1f} "
                  f"(require >= {minimum:.1f}; baseline {base_val:.1f})")
            if pr[key] < minimum:
                failures.append(f"{label}: {pr[key]:.1f} below required "
                                f"minimum {minimum:.1f}")
            continue
        if key in FIXED_MAX_KEYS:
            maximum = FIXED_MAX_KEYS[key]
            status = "FAIL" if pr[key] > maximum else "ok"
            print(f"[{status}] {label}: {pr[key]:.3f} "
                  f"(require <= {maximum:.2f}; baseline {base_val:.3f})")
            if pr[key] > maximum:
                failures.append(f"{label}: {pr[key]:.3f} above allowed "
                                f"maximum {maximum:.2f}")
            continue
        if key in INFO_KEYS or not key.endswith("_ms"):
            print(f"[info] {label}: {pr[key]:.4f} (baseline {base_val:.4f})")
            continue
        pr_norm = pr[key] / pr_calib
        base_norm = base_val / base_calib
        ratio = pr_norm / base_norm if base_norm > 0 else float("inf")
        gated = base_val >= MIN_GATED_MS
        status = "FAIL" if gated and ratio > threshold else \
            ("ok" if gated else "info")
        print(f"[{status}] {label}: {pr[key]:.0f} ms (norm {pr_norm:.2f}) vs "
              f"baseline {base_val:.0f} ms (norm {base_norm:.2f}) "
              f"-> x{ratio:.3f}")
        if gated and ratio > threshold:
            failures.append(f"{label}: normalized runtime x{ratio:.3f} "
                            f"exceeds threshold x{threshold:.2f}")
    return failures


def check_timings(pr_paths, baseline_path, threshold, minimums):
    pr_rows = load_timing_rows(pr_paths)
    base_rows = load_timing_rows([baseline_path])
    failures = []
    for scenario, base in sorted(base_rows.items()):
        if scenario not in pr_rows:
            failures.append(f"{scenario}: timing row missing from PR reports")
            continue
        failures += check_timing_row(scenario, pr_rows[scenario], base,
                                     threshold, minimums)
    # A PR row with no baseline counterpart would otherwise be silently
    # ungated — the exact mistake (new bench wired into CI, baseline not
    # regenerated) this gate exists to catch.
    for scenario in sorted(set(pr_rows) - set(base_rows)):
        failures.append(f"{scenario}: PR timing row has no baseline entry "
                        "(regenerate bench/baselines/BENCH_baseline.json)")
    return failures


def micro_times(path):
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: b["real_time"] for b in data.get("benchmarks", [])
            if "real_time" in b}


def check_micro(micro_path, min_speedup):
    """Machine-independent gate: the fast paths must beat their in-binary
    brute-force references by at least min_speedup at the largest size."""
    times = micro_times(micro_path)
    pairs = [
        ("BM_TransmitFanoutBrute/400", "BM_TransmitFanoutFast/400"),
        ("BM_InterferenceEvaluateReference/256", "BM_InterferenceEvaluate/256"),
    ]
    failures = []
    for brute, fast in pairs:
        if brute not in times or fast not in times:
            failures.append(f"missing {brute} / {fast} in {micro_path}")
            continue
        speedup = times[brute] / times[fast]
        status = "FAIL" if speedup < min_speedup else "ok"
        print(f"[{status}] {fast}: {speedup:.1f}x over {brute} "
              f"(require >= {min_speedup:.1f}x)")
        if speedup < min_speedup:
            failures.append(f"{fast}: speedup {speedup:.1f}x below "
                            f"{min_speedup:.1f}x")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--pr", required=True, action="append",
                    help="bench report JSON from this run (repeatable)")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline BENCH JSON (all timing rows)")
    ap.add_argument("--micro", help="bench_micro --benchmark_out JSON")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="allowed normalized-runtime ratio (default 1.25)")
    ap.add_argument("--min-speedup", type=float, default=5.0,
                    help="required fast-vs-brute speedup (default 5.0)")
    ap.add_argument("--min-measure-speedup", type=float, default=10.0,
                    help="required measurement fast-vs-reference speedup "
                         "(default 10.0)")
    ap.add_argument("--min-mac-decide-speedup", type=float, default=5.0,
                    help="required MAC-decision fast-vs-reference speedup "
                         "(default 5.0)")
    ap.add_argument("--min-mobility-speedup", type=float, default=5.0,
                    help="required incremental-invalidation vs full-rebuild "
                         "speedup (default 5.0)")
    args = ap.parse_args()

    minimums = {"min_measure_speedup": args.min_measure_speedup,
                "min_mac_decide_speedup": args.min_mac_decide_speedup,
                "min_mobility_speedup": args.min_mobility_speedup}
    failures = check_timings(args.pr, args.baseline, args.threshold, minimums)
    if args.micro:
        failures += check_micro(args.micro, args.min_speedup)
    if failures:
        print("\nbenchmark regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nbenchmark regression gate passed")


if __name__ == "__main__":
    main()
