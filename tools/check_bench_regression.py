#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares the BENCH_pr.json emitted by bench_dense_grid (a
stats::SweepReport with a trailing wall-clock "timing" row) against the
committed baseline, and optionally checks the fast-path speedup ratios
from a Google Benchmark JSON produced by bench_micro.

Wall-clock comparisons are normalized by the run's own calibration_ms (a
fixed CPU-bound workload timed on the same machine), so a slower or
faster CI runner does not masquerade as a code regression; only changes
relative to the machine's own speed count. The gate fails when a
normalized timing exceeds baseline * threshold (default 1.25, i.e. >25%
regression).

Refresh the baseline after an intentional performance change by re-running
the CI bench recipe locally (see .github/workflows/ci.yml, job
bench-regression) and committing the new BENCH_pr.json as
bench/baselines/BENCH_baseline.json.
"""

import argparse
import json
import sys

TIMING_SCENARIO = "dense_grid_bench"
CALIBRATION_KEY = "calibration_ms"
# Workload knobs compared for exact equality (not timings): a wall-clock
# comparison is only meaningful when the PR ran the same workload the
# baseline did.
EXACT_KEYS = {"nodes", "configs", "run_seconds", "threads"}
# Timings whose baseline is shorter than this are reported but not gated:
# sub-second samples on shared CI runners are dominated by scheduler and
# cache noise that the calibration ratio cannot correct.
MIN_GATED_MS = 1000.0


def load_timing_row(path):
    with open(path) as f:
        report = json.load(f)
    for run in report.get("runs", []):
        if run.get("scenario") == TIMING_SCENARIO and run.get("scheme") == "timing":
            return run.get("metrics", {})
    sys.exit(f"error: {path} has no '{TIMING_SCENARIO}' timing row")


def check_timings(pr_path, baseline_path, threshold):
    pr = load_timing_row(pr_path)
    base = load_timing_row(baseline_path)
    for key in (CALIBRATION_KEY,):
        if key not in pr or key not in base:
            sys.exit(f"error: missing {key} in timing rows")
    pr_calib, base_calib = pr[CALIBRATION_KEY], base[CALIBRATION_KEY]
    if pr_calib <= 0 or base_calib <= 0:
        sys.exit("error: non-positive calibration time")

    failures = []
    for key, base_ms in sorted(base.items()):
        if key == CALIBRATION_KEY:
            continue
        if key not in pr:
            failures.append(f"{key}: missing from PR report")
            continue
        if key in EXACT_KEYS:
            if pr[key] != base_ms:
                failures.append(f"{key}: PR ran with {pr[key]}, baseline {base_ms}"
                                " (bench knobs must match the baseline)")
            continue
        pr_norm = pr[key] / pr_calib
        base_norm = base_ms / base_calib
        ratio = pr_norm / base_norm if base_norm > 0 else float("inf")
        gated = base_ms >= MIN_GATED_MS
        status = "FAIL" if gated and ratio > threshold else \
            ("ok" if gated else "info")
        print(f"[{status}] {key}: {pr[key]:.0f} ms (norm {pr_norm:.2f}) vs "
              f"baseline {base_ms:.0f} ms (norm {base_norm:.2f}) -> x{ratio:.3f}")
        if gated and ratio > threshold:
            failures.append(f"{key}: normalized runtime x{ratio:.3f} exceeds "
                            f"threshold x{threshold:.2f}")
    return failures


def micro_times(path):
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: b["real_time"] for b in data.get("benchmarks", [])
            if "real_time" in b}


def check_micro(micro_path, min_speedup):
    """Machine-independent gate: the fast paths must beat their in-binary
    brute-force references by at least min_speedup at the largest size."""
    times = micro_times(micro_path)
    pairs = [
        ("BM_TransmitFanoutBrute/400", "BM_TransmitFanoutFast/400"),
        ("BM_InterferenceEvaluateReference/256", "BM_InterferenceEvaluate/256"),
    ]
    failures = []
    for brute, fast in pairs:
        if brute not in times or fast not in times:
            failures.append(f"missing {brute} / {fast} in {micro_path}")
            continue
        speedup = times[brute] / times[fast]
        status = "FAIL" if speedup < min_speedup else "ok"
        print(f"[{status}] {fast}: {speedup:.1f}x over {brute} "
              f"(require >= {min_speedup:.1f}x)")
        if speedup < min_speedup:
            failures.append(f"{fast}: speedup {speedup:.1f}x below "
                            f"{min_speedup:.1f}x")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--pr", required=True, help="BENCH_pr.json from this run")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline BENCH JSON")
    ap.add_argument("--micro", help="bench_micro --benchmark_out JSON")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="allowed normalized-runtime ratio (default 1.25)")
    ap.add_argument("--min-speedup", type=float, default=5.0,
                    help="required fast-vs-brute speedup (default 5.0)")
    args = ap.parse_args()

    failures = check_timings(args.pr, args.baseline, args.threshold)
    if args.micro:
        failures += check_micro(args.micro, args.min_speedup)
    if failures:
        print("\nbenchmark regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nbenchmark regression gate passed")


if __name__ == "__main__":
    main()
